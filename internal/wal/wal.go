// Package wal gives the in-memory knowledge graph (internal/kg) crash
// durability: an append-only, CRC32C-framed write-ahead log fed from the
// graph's mutation log, watermark-consistent checkpoints, and
// Open-style recovery.
//
// # Model
//
// The graph's global mutation watermark is the LSN space: mutation seq N
// in kg.Graph is LSN N in the log, so "the first W mutations" means the
// same thing in memory and on disk. A Manager attached to a graph drains
// MutationsSince into the current log segment on every Commit, writing
// entity/predicate/ontology dictionary deltas ahead of the mutations
// that reference them. Checkpoints serialize the whole graph under the
// all-shard cut (AllTriplesSnapshot) in identity order — exactly the
// order AssertBatch's merge-append restore path detects in O(n) — then
// truncate the log: older segments and checkpoints are deleted, and the
// graph's own in-memory mutation log is compacted via TruncateLog.
//
// # Durability contract
//
// The fsync policy decides which prefix survives a crash:
//
//   - SyncEachCommit: every Commit fsyncs before returning; DurableLSN
//     tracks the last committed LSN. Nothing acknowledged is ever lost.
//   - SyncInterval: a background flusher fsyncs every Options.SyncEvery;
//     at most one interval of committed-but-unsynced mutations is exposed.
//   - SyncNever: fsync only at checkpoint/close; the durable watermark is
//     the newest checkpoint (plus whatever the OS happened to write back).
//
// In every mode the recovery guarantee is the same shape: Open restores a
// watermark-consistent prefix of the mutation history — the state after
// exactly the first W mutations for the recovered watermark W — with
// W >= DurableLSN as of the crash. Torn or corrupt log tails are
// truncated and reported as diagnostics in RecoveryInfo, never a panic.
// SyncToWatermark is the explicit barrier: after it returns nil, every
// mutation at or below the given watermark is on disk regardless of
// policy.
//
// Entity record updates (SetPopularity/UpdateEntity) carry no LSN but
// are drained from the graph's dirty-entity set on every Commit and
// logged as record-update entries, so like dictionary registrations
// they are durable as of the first Commit after the update (and always
// as of a checkpoint). Replay applies them in written order, so
// last-write-wins reproduces the crash-time record state.
//
// # As-of reads and retention
//
// The manager is also the platform's time-travel substrate. With
// Options.RetainCheckpoints = N > 1, a checkpoint no longer deletes all
// superseded files: the newest N checkpoints survive, along with every
// log segment needed to replay forward from the oldest retained one.
// SnapshotAt(asOf) picks the newest retained checkpoint at or below
// asOf, loads it into a fresh immutable base graph (cached — bases are
// shared across reads), and collects the mutation suffix
// (checkpoint, asOf] from the retained segments. The pair feeds a
// graphengine read overlay that answers queries pinned at watermark
// asOf without touching live state. Watermarks below the oldest
// retained checkpoint are gone — SnapshotAt reports them as outside
// retention. The graph's in-memory mutation log is still truncated at
// the newest checkpoint (as-of reads replay from disk, not memory).
package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"saga/internal/kg"
)

// SyncPolicy selects when the log is fsynced (see the package doc's
// durability contract).
type SyncPolicy int

const (
	// SyncEachCommit fsyncs inside every Commit (the default).
	SyncEachCommit SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every SyncEvery.
	SyncInterval
	// SyncNever fsyncs only at checkpoints and Close.
	SyncNever
)

// Options configure Open.
type Options struct {
	// FS is the filesystem; nil selects the real one (OSFS).
	FS FS
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the flush period for SyncInterval; 0 selects 100ms.
	SyncEvery time.Duration
	// CheckpointEvery triggers an automatic checkpoint once that many
	// mutations have been committed past the previous checkpoint.
	// 0 disables automatic checkpoints (Checkpoint stays available).
	CheckpointEvery uint64
	// KeepGraphLog disables the TruncateLog call after a checkpoint,
	// preserving the graph's full in-memory mutation log. Consumers that
	// want a Feed(0) pull to stay complete (tests, shadow replicas) set
	// this; servers leave it off so the log stays bounded.
	KeepGraphLog bool
	// RetainCheckpoints keeps the newest N checkpoints on disk (plus the
	// log segments needed to replay between them and the live tail)
	// instead of eagerly deleting everything a new checkpoint
	// supersedes. Retained history is what SnapshotAt serves as-of reads
	// from: any watermark at or above the oldest retained checkpoint
	// stays readable. 0 and 1 both mean "newest only" — the eager
	// behavior.
	RetainCheckpoints int
	// RetainAge protects young checkpoints from count-based eviction: a
	// checkpoint is only deleted once it is older than RetainAge, so the
	// as-of window covers at least that much wall-clock history no
	// matter how frequently checkpoints are taken (a checkpoint storm
	// cannot age history out early). It never forces deletion — a
	// checkpoint inside the RetainCheckpoints budget is kept at any age
	// — and 0 disables the age floor. Checkpoints found on disk at Open
	// are stamped with the open time (their true age is unknowable
	// without trusting file metadata), so a freshly reopened manager
	// retains them for a full RetainAge.
	RetainAge time.Duration
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OSFS{}
	}
	return o.FS
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// CheckpointLSN is the watermark of the checkpoint loaded (0 = none).
	CheckpointLSN uint64
	// RecoveredLSN is the graph watermark after log replay.
	RecoveredLSN uint64
	// SegmentsReplayed counts log segments scanned.
	SegmentsReplayed int
	// MutationsReplayed counts mutations applied from the log suffix.
	MutationsReplayed int
	// TruncatedBytes counts log bytes discarded as torn or corrupt.
	TruncatedBytes int64
	// Diagnostics describes every anomaly handled during recovery (torn
	// tails, dropped segments, leftover temp files). Recovery succeeding
	// with diagnostics means a consistent prefix was restored.
	Diagnostics []string
}

// ErrClosed is returned by operations on a closed Manager.
var ErrClosed = errors.New("wal: manager closed")

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpPrefix  = "tmp-"
)

func segName(gen uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, gen, segSuffix) }
func ckptName(wm uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, wm, ckptSuffix) }
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(mid, "%016x", &v); err != nil || len(mid) != 16 {
		return 0, false
	}
	return v, true
}

// Manager couples a kg.Graph to a WAL directory. All methods are safe
// for concurrent use; Commit/Checkpoint/Close serialize on one mutex.
// After any write or sync error the manager latches into a failed state
// (the segment's tail is in an unknown condition) and every subsequent
// operation returns the latched error; the graph itself keeps working,
// only durability is lost.
type Manager struct {
	fs   FS
	dir  string
	g    *kg.Graph
	opts Options

	durable atomic.Uint64 // highest fsync-acknowledged LSN

	mu      sync.Mutex
	seg     File
	segPath string
	gen     uint64
	// feed is the manager's changefeed over the graph's mutation log; its
	// cursor is the highest LSN written (not necessarily synced) to the
	// log. An incomplete pull latches the manager: only checkpointLocked
	// truncates the graph log, after resetting the feed, so the floor
	// passing the cursor means an external TruncateLog silently dropped
	// unlogged mutations.
	feed    *kg.Changefeed
	ckptLSN uint64 // watermark of the newest durable checkpoint
	// ckpts tracks the watermarks of the checkpoints currently on disk,
	// ascending; segFirst maps each on-disk segment generation to its
	// header firstLSN (the last LSN before the segment's first record).
	// Both drive retention deletion and as-of suffix collection.
	ckpts    []uint64
	segFirst map[uint64]uint64
	// ckptTimes stamps each indexed checkpoint with its creation time
	// (or the Open time, for checkpoints discovered on disk) for the
	// RetainAge floor; now is swappable so retention tests can run a
	// fake clock instead of sleeping.
	ckptTimes map[uint64]time.Time
	now       func() time.Time
	// asofBases caches checkpoint base graphs loaded for SnapshotAt,
	// keyed by checkpoint watermark. Bases are immutable once loaded.
	asofBases map[uint64]*kg.Graph
	// dictionary cursors: highest entity/predicate/ontology-type ID
	// already shipped to the log.
	entCur, predCur, ontCur int
	failed                  error
	closed                  bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open attaches durability to g, recovering any prior state found in
// dir. g must be empty (no entities, no mutations): recovery rebuilds
// the dictionaries, ontology, triples, and watermark into it, and an
// empty dir yields an empty recovery. On success the returned manager
// owns a fresh active segment and g's watermark equals
// RecoveryInfo.RecoveredLSN.
func Open(dir string, g *kg.Graph, opts Options) (*Manager, *RecoveryInfo, error) {
	if g.LastSeq() != 0 || g.NumEntities() != 0 || g.NumPredicates() != 0 || g.Ontology().Len() != 0 {
		return nil, nil, errors.New("wal: Open requires an empty graph (use ImportGraph to seed one through a manager)")
	}
	fs := opts.fs()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	info := &RecoveryInfo{}
	maxGen, err := recoverState(fs, dir, g, info)
	if err != nil {
		return nil, info, err
	}
	m := &Manager{
		fs:        fs,
		dir:       dir,
		g:         g,
		opts:      opts,
		gen:       maxGen, // openSegment bumps to maxGen+1
		feed:      g.Feed(g.LastSeq()),
		ckptLSN:   info.CheckpointLSN,
		segFirst:  make(map[uint64]uint64),
		ckptTimes: make(map[uint64]time.Time),
		now:       time.Now,
		entCur:    g.NumEntities(),
		predCur:   g.NumPredicates(),
		ontCur:    g.Ontology().Len(),
	}
	m.durable.Store(g.LastSeq())
	// Index the surviving files: retention deletion and as-of suffix
	// collection need each checkpoint's watermark and each segment's
	// firstLSN without re-reading the directory per decision.
	if names, derr := fs.ReadDir(dir); derr == nil {
		for _, n := range names {
			if w, ok := parseName(n, ckptPrefix, ckptSuffix); ok {
				m.ckpts = append(m.ckpts, w)
			} else if gen, ok := parseName(n, segPrefix, segSuffix); ok {
				if first, herr := readSegFirstLSN(fs, filepath.Join(dir, n)); herr == nil {
					m.segFirst[gen] = first
				}
			}
		}
		sort.Slice(m.ckpts, func(i, j int) bool { return m.ckpts[i] < m.ckpts[j] })
	}
	// Discovered checkpoints count as created now: their real age is not
	// recorded anywhere trustworthy, and over-retaining is the safe
	// direction for an age floor.
	openedAt := m.now()
	for _, w := range m.ckpts {
		m.ckptTimes[w] = openedAt
	}
	if err := m.openSegmentLocked(); err != nil {
		return nil, info, err
	}
	if opts.Sync == SyncInterval {
		every := opts.SyncEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		m.flushStop = make(chan struct{})
		m.flushDone = make(chan struct{})
		go m.flushLoop(every, m.flushStop, m.flushDone)
	}
	return m, info, nil
}

// openSegmentLocked creates the next log segment (gen+1), writes its
// header, and makes its directory entry durable.
func (m *Manager) openSegmentLocked() error {
	m.gen++
	name := segName(m.gen)
	path := filepath.Join(m.dir, name)
	f, err := m.fs.Create(path)
	if err != nil {
		return m.latch(fmt.Errorf("wal: create segment %s: %w", name, err))
	}
	first := m.feed.Cursor()
	hdr := appendFrame(nil, encSegHeader(nil, segHeader{version: walVersion, gen: m.gen, firstLSN: first}))
	if _, err := f.Write(hdr); err != nil {
		return m.latch(fmt.Errorf("wal: write segment header: %w", err))
	}
	if err := f.Sync(); err != nil {
		return m.latch(fmt.Errorf("wal: sync segment header: %w", err))
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return m.latch(fmt.Errorf("wal: sync dir after segment create: %w", err))
	}
	m.seg, m.segPath = f, path
	m.segFirst[m.gen] = first
	return nil
}

func (m *Manager) latch(err error) error {
	if m.failed == nil {
		m.failed = err
	}
	return err
}

func (m *Manager) checkLocked() error {
	if m.closed {
		return ErrClosed
	}
	return m.failed
}

// Commit drains every graph mutation not yet in the log (plus the
// dictionary deltas they depend on) into the active segment, fsyncing
// per the sync policy, and returns the new applied LSN. With
// CheckpointEvery set it may also take a checkpoint.
func (m *Manager) Commit() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return m.feed.Cursor(), err
	}
	if err := m.commitLocked(); err != nil {
		return m.feed.Cursor(), err
	}
	if m.opts.Sync == SyncEachCommit {
		if err := m.syncLocked(); err != nil {
			return m.feed.Cursor(), err
		}
	}
	if m.opts.CheckpointEvery > 0 && m.feed.Cursor()-m.ckptLSN >= m.opts.CheckpointEvery {
		if err := m.checkpointLocked(); err != nil {
			return m.feed.Cursor(), err
		}
	}
	return m.feed.Cursor(), nil
}

// commitLocked writes dictionary deltas, entity record updates, and
// pending mutations to the segment. Mutations are pulled FIRST,
// dictionary deltas read after: a mutation passes graph validation only
// after its entities/predicates are registered (the dictionary lengths
// are published before the mutation is applied), so dictionary counts
// read after the pull are guaranteed to cover every ID any pulled
// mutation references. The records are then written dictionary-first so
// replay registers before it asserts.
//
// The feed's cursor advances with the pull; a write failure afterwards
// latches the manager, so the cursor never silently skips records that
// were not persisted.
func (m *Manager) commitLocked() error {
	muts, complete := m.feed.Pull()
	if !complete {
		// Cannot happen through this manager (only checkpointLocked
		// truncates, after resetting the feed); an external TruncateLog
		// call would silently lose mutations, so fail loudly.
		return m.latch(fmt.Errorf("wal: graph log truncated past applied LSN %d (floor %d)", m.feed.Cursor(), m.g.LogFloor()))
	}
	buf := m.encodeDictDeltasLocked(nil)
	// Record updates for already-shipped entities ride every commit;
	// entities at or past the (just-advanced) cursor were shipped above
	// with their current record, so an update entry would be redundant.
	for _, id := range m.g.TakeDirtyEntities() {
		if int(id) > m.entCur {
			continue
		}
		if e := m.g.Entity(id); e != nil {
			buf = appendFrame(buf, encEntityUpdate(nil, e))
		}
	}
	for _, mu := range muts {
		buf = appendFrame(buf, encMutation(nil, mu))
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := m.seg.Write(buf); err != nil {
		return m.latch(fmt.Errorf("wal: append: %w", err))
	}
	return nil
}

// encodeDictDeltasLocked appends framed records for every dictionary
// entry past the cursors, advancing them.
func (m *Manager) encodeDictDeltasLocked(buf []byte) []byte {
	ont := m.g.Ontology()
	for n := ont.Len(); m.ontCur < n; m.ontCur++ {
		id := kg.TypeID(m.ontCur + 1)
		buf = appendFrame(buf, encOntType(nil, ontRec{id: id, name: ont.Name(id), parent: ont.Parent(id)}))
	}
	for n := m.g.NumEntities(); m.entCur < n; m.entCur++ {
		e := m.g.Entity(kg.EntityID(m.entCur + 1))
		buf = appendFrame(buf, encEntity(nil, e))
	}
	for n := m.g.NumPredicates(); m.predCur < n; m.predCur++ {
		p := m.g.Predicate(kg.PredicateID(m.predCur + 1))
		buf = appendFrame(buf, encPredicate(nil, p))
	}
	return buf
}

func (m *Manager) syncLocked() error {
	if err := m.seg.Sync(); err != nil {
		return m.latch(fmt.Errorf("wal: fsync: %w", err))
	}
	if d, a := m.durable.Load(), m.feed.Cursor(); a > d {
		m.durable.Store(a)
	}
	return nil
}

// Sync commits pending mutations and fsyncs the segment, making every
// mutation up to the returned LSN durable.
func (m *Manager) Sync() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return m.durable.Load(), err
	}
	if err := m.commitLocked(); err != nil {
		return m.durable.Load(), err
	}
	if err := m.syncLocked(); err != nil {
		return m.durable.Load(), err
	}
	return m.durable.Load(), nil
}

// SyncToWatermark is the durability barrier: it returns nil only once
// every mutation with LSN <= w is fsync-durable, committing and syncing
// as needed. w above the graph's current watermark is an error.
func (m *Manager) SyncToWatermark(w uint64) error {
	if m.durable.Load() >= w {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.durable.Load() >= w {
		return nil
	}
	if err := m.checkLocked(); err != nil {
		return err
	}
	if err := m.commitLocked(); err != nil {
		return err
	}
	if m.feed.Cursor() < w {
		return fmt.Errorf("wal: SyncToWatermark(%d) beyond graph watermark %d", w, m.feed.Cursor())
	}
	return m.syncLocked()
}

// DurableLSN returns the highest fsync-acknowledged LSN: every mutation
// at or below it survives any crash.
func (m *Manager) DurableLSN() uint64 { return m.durable.Load() }

// AppliedLSN returns the highest LSN written (not necessarily synced) to
// the log — the manager's changefeed cursor.
func (m *Manager) AppliedLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.feed.Cursor()
}

// RetainedCheckpoints returns how many checkpoints are currently on
// disk (at most Options.RetainCheckpoints after the next checkpoint).
func (m *Manager) RetainedCheckpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ckpts)
}

// CheckpointLSN returns the watermark of the newest durable checkpoint.
func (m *Manager) CheckpointLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ckptLSN
}

// Checkpoint serializes the full graph state under one consistent cut,
// makes it durable, rotates the log, deletes superseded files, and
// compacts the graph's in-memory mutation log (unless KeepGraphLog).
// Returns the checkpoint watermark.
func (m *Manager) Checkpoint() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return m.ckptLSN, err
	}
	if err := m.checkpointLocked(); err != nil {
		return m.ckptLSN, err
	}
	return m.ckptLSN, nil
}

// ckptTripleBlockSize is how many triples share one checkpoint frame.
// Large enough to amortize the frame header, CRC pass, and scan dispatch
// to noise; small enough that a torn tail or corrupt frame loses little
// and the encoder's scratch payload stays tens of KB.
const ckptTripleBlockSize = 512

func (m *Manager) checkpointLocked() error {
	// Drain pending mutations first so the old segment is complete up to
	// some LSN <= wm; everything the snapshot covers beyond that is in
	// the checkpoint itself.
	if err := m.commitLocked(); err != nil {
		return err
	}
	ts, wm := m.g.AllTriplesSnapshot()
	// Dictionary state is read after the snapshot: registrations are not
	// watermarked, and extras beyond wm are harmless on restore (replay
	// dict records dedup by key/name).
	ont := m.g.Ontology()
	nOnt, nEnt, nPred := ont.Len(), m.g.NumEntities(), m.g.NumPredicates()

	name := ckptName(wm)
	tmp := filepath.Join(m.dir, tmpPrefix+name)
	f, err := m.fs.Create(tmp)
	if err != nil {
		return m.latch(fmt.Errorf("wal: create checkpoint: %w", err))
	}
	buf := appendFrame(nil, encCkptHeader(nil, ckptHeader{
		watermark: wm,
		nEntities: uint64(nEnt),
		nPreds:    uint64(nPred),
		nOntTypes: uint64(nOnt),
		nTriples:  uint64(len(ts)),
	}))
	for id := kg.TypeID(1); int(id) <= nOnt; id++ {
		buf = appendFrame(buf, encOntType(nil, ontRec{id: id, name: ont.Name(id), parent: ont.Parent(id)}))
	}
	for id := kg.EntityID(1); int(id) <= nEnt; id++ {
		buf = appendFrame(buf, encEntity(nil, m.g.Entity(id)))
	}
	for id := kg.PredicateID(1); int(id) <= nPred; id++ {
		buf = appendFrame(buf, encPredicate(nil, m.g.Predicate(id)))
	}
	// Triples are framed in blocks (many triples per CRC frame) so
	// recovery amortizes the per-frame scan-and-dispatch cost, and
	// flushed in chunks so checkpointing a large graph does not hold the
	// whole serialized image in memory alongside the triples.
	const chunk = 1 << 20
	var payload []byte
	for start := 0; start < len(ts); start += ckptTripleBlockSize {
		end := min(start+ckptTripleBlockSize, len(ts))
		payload = encTripleBlock(payload[:0], ts[start:end])
		buf = appendFrame(buf, payload)
		if len(buf) >= chunk {
			if _, err := f.Write(buf); err != nil {
				return m.latch(fmt.Errorf("wal: write checkpoint: %w", err))
			}
			buf = buf[:0]
		}
	}
	buf = appendFrame(buf, encCkptFooter(nil, ckptFooter{watermark: wm, nTriples: uint64(len(ts))}))
	if _, err := f.Write(buf); err != nil {
		return m.latch(fmt.Errorf("wal: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		return m.latch(fmt.Errorf("wal: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		return m.latch(fmt.Errorf("wal: close checkpoint: %w", err))
	}
	final := filepath.Join(m.dir, name)
	if err := m.fs.Rename(tmp, final); err != nil {
		return m.latch(fmt.Errorf("wal: publish checkpoint: %w", err))
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return m.latch(fmt.Errorf("wal: sync dir after checkpoint: %w", err))
	}
	// The checkpoint is durable: it subsumes every mutation <= wm, so
	// both cursors advance even if the log itself was never fsynced.
	m.ckptLSN = wm
	if len(m.ckpts) == 0 || m.ckpts[len(m.ckpts)-1] != wm {
		m.ckpts = append(m.ckpts, wm)
	}
	m.ckptTimes[wm] = m.now()
	if m.feed.Cursor() < wm {
		m.feed.Reset(wm)
	}
	if d := m.durable.Load(); wm > d {
		m.durable.Store(wm)
	}
	// Advance dictionary cursors past everything the checkpoint captured
	// so the new segment does not re-ship it.
	m.ontCur, m.entCur, m.predCur = nOnt, nEnt, nPred

	// Rotate: retire the old segment, open a fresh one, then apply the
	// retention policy. Deletion durability is best-effort (a leftover
	// old segment or checkpoint is ignored by recovery).
	if err := m.seg.Sync(); err != nil {
		return m.latch(fmt.Errorf("wal: sync old segment: %w", err))
	}
	if err := m.seg.Close(); err != nil {
		return m.latch(fmt.Errorf("wal: close old segment: %w", err))
	}
	oldGen := m.gen
	if err := m.openSegmentLocked(); err != nil {
		return err
	}
	m.applyRetentionLocked(oldGen)
	if !m.opts.KeepGraphLog {
		m.g.TruncateLog(wm)
	}
	return nil
}

// applyRetentionLocked deletes checkpoints beyond Options.
// RetainCheckpoints (newest first, and additionally aged past
// Options.RetainAge when that floor is set) and every retired log
// segment whose content is entirely at or below the oldest retained
// checkpoint's watermark. A segment's content spans (firstLSN, next
// segment's firstLSN], so segment g is dead once its successor's
// firstLSN is at or below that watermark; firstLSN is non-decreasing
// across generations, which makes deletability a prefix property.
// oldGen is the just-retired generation — the active segment is never
// deleted.
func (m *Manager) applyRetentionLocked(oldGen uint64) {
	retain := m.opts.RetainCheckpoints
	if retain < 1 {
		retain = 1
	}
	drop := len(m.ckpts) - retain
	if drop > 0 && m.opts.RetainAge > 0 {
		// The age floor only shrinks the drop: checkpoint times are
		// non-decreasing in watermark order, so the stale ones form a
		// prefix and count-based eviction stops at the first young one.
		cutoff := m.now().Add(-m.opts.RetainAge)
		stale := 0
		for _, w := range m.ckpts[:drop] {
			if m.ckptTimes[w].After(cutoff) {
				break
			}
			stale++
		}
		drop = stale
	}
	if drop > 0 {
		for _, w := range m.ckpts[:drop] {
			_ = m.fs.Remove(filepath.Join(m.dir, ckptName(w)))
			delete(m.ckptTimes, w)
		}
		m.ckpts = append(m.ckpts[:0], m.ckpts[drop:]...)
	}
	if len(m.ckpts) == 0 {
		return
	}
	floor := m.ckpts[0] // oldest retained watermark; history below it is gone
	for w := range m.asofBases {
		if w < floor {
			delete(m.asofBases, w)
		}
	}
	gens := make([]uint64, 0, len(m.segFirst))
	for g := range m.segFirst {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for i, g := range gens {
		if g > oldGen || i+1 >= len(gens) || m.segFirst[gens[i+1]] > floor {
			break
		}
		_ = m.fs.Remove(filepath.Join(m.dir, segName(g)))
		delete(m.segFirst, g)
	}
	_ = m.fs.SyncDir(m.dir)
}

// Close flushes and fsyncs all pending state and closes the segment.
// The graph stays usable; further mutations are simply no longer logged.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.flushStop != nil {
		close(m.flushStop)
		stop := m.flushDone
		m.flushStop = nil
		m.mu.Unlock()
		<-stop
		m.mu.Lock()
	}
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.closed = true
	if m.failed != nil {
		return m.failed
	}
	if err := m.commitLocked(); err != nil {
		return err
	}
	if err := m.syncLocked(); err != nil {
		return err
	}
	if err := m.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return nil
}

func (m *Manager) flushLoop(every time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.mu.Lock()
			if m.checkLocked() == nil {
				if m.commitLocked() == nil {
					_ = m.syncLocked()
				}
			}
			m.mu.Unlock()
		}
	}
}

// ImportGraph copies src's ontology, dictionaries, and triples into the
// empty graph dst in ID order, so every ID is preserved. It is how a
// graph built without durability (a generated world, a bulk load) is
// seeded into a durable one: Open an empty graph, ImportGraph into it,
// then Checkpoint.
func ImportGraph(dst, src *kg.Graph) error {
	if dst.LastSeq() != 0 || dst.NumEntities() != 0 {
		return errors.New("wal: ImportGraph requires an empty destination")
	}
	srcOnt, dstOnt := src.Ontology(), dst.Ontology()
	for id := kg.TypeID(1); int(id) <= srcOnt.Len(); id++ {
		got, err := dstOnt.AddType(srcOnt.Name(id), srcOnt.Parent(id))
		if err != nil {
			return fmt.Errorf("wal: import ontology: %w", err)
		}
		if got != id {
			return fmt.Errorf("wal: import ontology: type %q got ID %v, want %v", srcOnt.Name(id), got, id)
		}
	}
	for i := 1; i <= src.NumEntities(); i++ {
		e := src.Entity(kg.EntityID(i))
		got, err := dst.AddEntity(*e)
		if err != nil {
			return fmt.Errorf("wal: import entity: %w", err)
		}
		if got != e.ID {
			return fmt.Errorf("wal: import entity %q: got ID %v, want %v", e.Key, got, e.ID)
		}
	}
	for i := 1; i <= src.NumPredicates(); i++ {
		p := src.Predicate(kg.PredicateID(i))
		got, err := dst.AddPredicate(*p)
		if err != nil {
			return fmt.Errorf("wal: import predicate: %w", err)
		}
		if got != p.ID {
			return fmt.Errorf("wal: import predicate %q: got ID %v, want %v", p.Name, got, p.ID)
		}
	}
	ts := src.AllTriples()
	added, err := dst.AssertBatch(ts)
	if err != nil {
		return fmt.Errorf("wal: import triples: %w", err)
	}
	if added != len(ts) {
		return fmt.Errorf("wal: import triples: %d of %d added", added, len(ts))
	}
	return nil
}

// --- recovery -----------------------------------------------------------

// recoverState loads the newest checkpoint and replays the log suffix
// into g, returning the highest segment generation seen on disk.
func recoverState(fs FS, dir string, g *kg.Graph, info *RecoveryInfo) (maxGen uint64, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("wal: read dir: %w", err)
	}
	var ckpts []uint64
	var segs []uint64
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, tmpPrefix):
			// Leftover from a checkpoint interrupted before publish.
			if rerr := fs.Remove(filepath.Join(dir, n)); rerr == nil {
				info.Diagnostics = append(info.Diagnostics, fmt.Sprintf("removed leftover temp file %s", n))
			}
		default:
			if w, ok := parseName(n, ckptPrefix, ckptSuffix); ok {
				ckpts = append(ckpts, w)
			} else if gen, ok := parseName(n, segPrefix, segSuffix); ok {
				segs = append(segs, gen)
				if gen > maxGen {
					maxGen = gen
				}
			} else {
				info.Diagnostics = append(info.Diagnostics, fmt.Sprintf("ignoring unrecognized file %s", n))
			}
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Load the newest checkpoint. Older checkpoints are not a fallback:
	// taking checkpoint W deletes the segments covering (0, W], so state
	// before the newest checkpoint is simply gone — a corrupt newest
	// checkpoint (a fully-fsynced file, not a crash artifact) is
	// unrecoverable data loss and must surface as an error, not as a
	// silently emptier graph.
	if len(ckpts) > 0 {
		wm := ckpts[0]
		if err := loadCheckpoint(fs, dir, ckptName(wm), wm, g); err != nil {
			return maxGen, fmt.Errorf("wal: checkpoint %s unusable: %w", ckptName(wm), err)
		}
		info.CheckpointLSN = wm
	}

	// Replay segments in generation order. The first anomaly (torn tail,
	// CRC failure, LSN gap, replay mismatch) ends the usable suffix:
	// everything after it in this segment and all later segments is
	// discarded so the next incarnation's log stays contiguous.
	stopped := false
	for _, gen := range segs {
		name := segName(gen)
		path := filepath.Join(dir, name)
		if stopped {
			if rerr := fs.Remove(path); rerr == nil {
				info.Diagnostics = append(info.Diagnostics, fmt.Sprintf("dropped segment %s past recovery stop point", name))
			}
			continue
		}
		good, torn, replayed, diag, rerr := replaySegment(fs, path, name, gen, g)
		info.SegmentsReplayed++
		info.MutationsReplayed += replayed
		if diag != "" {
			info.Diagnostics = append(info.Diagnostics, diag)
		}
		if rerr != nil {
			return maxGen, rerr
		}
		if diag != "" {
			// Truncate the bad tail so old garbage cannot be misread as
			// fresh records later, then drop every later segment.
			info.TruncatedBytes += torn
			if terr := fs.Truncate(path, good); terr == nil {
				info.Diagnostics = append(info.Diagnostics, fmt.Sprintf("truncated %s to %d bytes (%d discarded)", name, good, torn))
			}
			stopped = true
		}
	}
	_ = fs.SyncDir(dir)
	info.RecoveredLSN = g.LastSeq()
	return maxGen, nil
}

// loadCheckpoint restores one checkpoint file into the empty graph g.
// Any integrity failure (bad frame, missing footer, count mismatch,
// ID drift) is an error; the caller decides whether that is fatal.
func loadCheckpoint(fs FS, dir, name string, wantWM uint64, g *kg.Graph) error {
	r, err := fs.OpenRead(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer r.Close()

	var hdr ckptHeader
	sawHeader, sawFooter := false, false
	var triples []kg.Triple
	err = func() error {
		_, err := scanFrames(name, r, func(p []byte) error {
			if len(p) == 0 {
				return errors.New("empty payload")
			}
			if !sawHeader {
				if p[0] != recCheckpointHeader {
					return fmt.Errorf("first record type %d, want checkpoint header", p[0])
				}
				h, err := decCkptHeader(p)
				if err != nil {
					return err
				}
				if h.watermark != wantWM {
					return fmt.Errorf("header watermark %d, want %d (filename)", h.watermark, wantWM)
				}
				hdr, sawHeader = h, true
				return nil
			}
			if sawFooter {
				return errors.New("records after footer")
			}
			switch p[0] {
			case recOntType, recEntity, recPredicate:
				return applyDictRecord(g, p)
			case recTriple:
				// Single-triple frames: the pre-block checkpoint format,
				// still accepted so old checkpoints restore.
				t, err := decTriple(p)
				if err != nil {
					return err
				}
				triples = append(triples, t)
				return nil
			case recTripleBlock:
				return decTripleBlock(p, func(t kg.Triple) error {
					triples = append(triples, t)
					return nil
				})
			case recCheckpointFooter:
				f, err := decCkptFooter(p)
				if err != nil {
					return err
				}
				if f.watermark != hdr.watermark || f.nTriples != uint64(len(triples)) {
					return fmt.Errorf("footer (wm=%d n=%d) disagrees with body (wm=%d n=%d)",
						f.watermark, f.nTriples, hdr.watermark, len(triples))
				}
				sawFooter = true
				return nil
			default:
				return fmt.Errorf("unexpected record type %d in checkpoint", p[0])
			}
		})
		return err
	}()
	if err != nil {
		return err
	}
	if !sawHeader || !sawFooter {
		return errors.New("incomplete checkpoint (missing header or footer)")
	}
	if uint64(g.NumEntities()) != hdr.nEntities || uint64(g.NumPredicates()) != hdr.nPreds ||
		uint64(g.Ontology().Len()) != hdr.nOntTypes {
		return fmt.Errorf("dictionary counts (%d ent, %d pred, %d ont) disagree with header (%d, %d, %d)",
			g.NumEntities(), g.NumPredicates(), g.Ontology().Len(), hdr.nEntities, hdr.nPreds, hdr.nOntTypes)
	}
	// The checkpoint wrote triples in identity order (AllTriplesSnapshot),
	// so this restore takes AssertBatch's merge-append fast path.
	added, err := g.AssertBatch(triples)
	if err != nil {
		return fmt.Errorf("restore triples: %w", err)
	}
	if added != len(triples) {
		return fmt.Errorf("restore triples: %d of %d added (duplicates in checkpoint)", added, len(triples))
	}
	// Fast-forward the graph's watermark into the durable LSN space: the
	// restored state IS the state after the first wm mutations.
	if err := g.AdvanceWatermark(hdr.watermark); err != nil {
		return err
	}
	return nil
}

// applyDictRecord registers one dictionary record, enforcing that replay
// reproduces the original dense ID (registrations are append-only and
// replayed in written order, so any drift means corruption). Records for
// already-registered IDs — the overlap between a checkpoint's full dump
// and the log suffix's deltas — are verified against the existing entry.
func applyDictRecord(g *kg.Graph, p []byte) error {
	switch p[0] {
	case recOntType:
		r, err := decOntType(p)
		if err != nil {
			return err
		}
		got, err := g.Ontology().AddType(r.name, r.parent)
		if err != nil {
			return fmt.Errorf("replay ontology type %q: %w", r.name, err)
		}
		if got != r.id {
			return fmt.Errorf("replay ontology type %q: got ID %v, want %v", r.name, got, r.id)
		}
	case recEntity:
		e, err := decEntity(p)
		if err != nil {
			return err
		}
		got, err := g.AddEntity(e)
		if err != nil {
			return fmt.Errorf("replay entity %q: %w", e.Key, err)
		}
		if got != e.ID {
			return fmt.Errorf("replay entity %q: got ID %v, want %v", e.Key, got, e.ID)
		}
	case recPredicate:
		pr, err := decPredicate(p)
		if err != nil {
			return err
		}
		got, err := g.AddPredicate(pr)
		if err != nil {
			return fmt.Errorf("replay predicate %q: %w", pr.Name, err)
		}
		if got != pr.ID {
			return fmt.Errorf("replay predicate %q: got ID %v, want %v", pr.Name, got, pr.ID)
		}
	}
	return nil
}

// replayStop signals a non-corrupt-frame replay anomaly (LSN gap, apply
// mismatch, malformed record); the scan stops before the offending frame
// and the tail is discarded.
type replayStop struct{ reason string }

func (e *replayStop) Error() string { return e.reason }

// replaySegment scans one segment, applying dictionary records and every
// mutation that extends the graph's watermark. It returns the byte
// length of the applied prefix, the count of tail bytes past it, the
// number of mutations applied, a non-empty diagnostic if the segment's
// tail was unusable, and a fatal error only for FS-level read failures.
func replaySegment(fs FS, path, name string, gen uint64, g *kg.Graph) (good, torn int64, replayed int, diag string, err error) {
	rc, err := fs.OpenRead(path)
	if err != nil {
		return 0, 0, 0, "", fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer rc.Close()
	r := &countReader{r: rc}
	sawHeader := false
	good, serr := scanFrames(name, r, func(p []byte) error {
		if len(p) == 0 {
			return &replayStop{reason: "empty payload"}
		}
		if !sawHeader {
			if p[0] != recSegmentHeader {
				return &replayStop{reason: fmt.Sprintf("first record type %d, want segment header", p[0])}
			}
			h, err := decSegHeader(p)
			if err != nil {
				return &replayStop{reason: err.Error()}
			}
			if h.version != walVersion {
				return &replayStop{reason: fmt.Sprintf("unsupported version %d", h.version)}
			}
			if h.gen != gen {
				return &replayStop{reason: fmt.Sprintf("header generation %d, filename generation %d", h.gen, gen)}
			}
			sawHeader = true
			return nil
		}
		switch p[0] {
		case recOntType, recEntity, recPredicate:
			if err := applyDictRecord(g, p); err != nil {
				return &replayStop{reason: err.Error()}
			}
			return nil
		case recEntityUpdate:
			// Record updates carry no LSN; written order IS the update
			// order, so last-write-wins replay reproduces the final
			// record state (a checkpoint's copy is re-overwritten by the
			// updates that preceded it, landing on the same value).
			e, err := decEntityUpdate(p)
			if err != nil {
				return &replayStop{reason: err.Error()}
			}
			if err := g.ReplaceEntity(e); err != nil {
				return &replayStop{reason: fmt.Sprintf("replay entity update: %v", err)}
			}
			return nil
		case recMutation:
			mu, err := decMutation(p)
			if err != nil {
				return &replayStop{reason: err.Error()}
			}
			last := g.LastSeq()
			if mu.Seq <= last {
				return nil // covered by the checkpoint (or a re-shipped prefix)
			}
			if mu.Seq != last+1 {
				return &replayStop{reason: fmt.Sprintf("LSN gap: log continues at %d, graph watermark %d", mu.Seq, last)}
			}
			switch mu.Op {
			case kg.OpAssert:
				added, err := g.AssertNew(mu.T)
				if err != nil {
					return &replayStop{reason: fmt.Sprintf("replay LSN %d: %v", mu.Seq, err)}
				}
				if !added {
					return &replayStop{reason: fmt.Sprintf("replay LSN %d: assert was a duplicate", mu.Seq)}
				}
			case kg.OpRetract:
				if !g.Retract(mu.T) {
					return &replayStop{reason: fmt.Sprintf("replay LSN %d: retract of absent fact", mu.Seq)}
				}
			}
			replayed++
			return nil
		default:
			return &replayStop{reason: fmt.Sprintf("unexpected record type %d in segment", p[0])}
		}
	})
	// Drain whatever the scan left unread so torn counts the whole
	// discarded tail, not just the bytes the scanner happened to touch.
	_, _ = io.Copy(io.Discard, r)
	torn = r.n - good
	switch e := serr.(type) {
	case nil:
		return good, torn, replayed, "", nil
	case *CorruptError:
		return good, torn, replayed, e.Error(), nil
	case *replayStop:
		return good, torn, replayed, fmt.Sprintf("wal: replay stopped in %s at offset %d: %s", name, good, e.reason), nil
	default:
		return good, torn, replayed, "", fmt.Errorf("wal: read segment %s: %w", name, serr)
	}
}

// countReader counts bytes delivered from the wrapped reader.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
