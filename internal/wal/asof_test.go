package wal

import (
	"errors"
	"strings"
	"testing"
	"time"

	"saga/internal/kg"
)

// ckptEvery drives a scripted workload for steps operations, taking a
// checkpoint every every steps, and returns the checkpoint watermarks.
func ckptEvery(t *testing.T, s *scripted, m *Manager, steps, every int) []uint64 {
	t.Helper()
	var wms []uint64
	for i := 0; i < steps; i++ {
		s.step()
		if i%every == every-1 {
			wm, err := m.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint at step %d: %v", i, err)
			}
			wms = append(wms, wm)
		}
	}
	return wms
}

// TestSnapshotAtReconstructs checks SnapshotAt's contract across the
// retention window: the base graph is exactly the replayed prefix up to
// the chosen checkpoint, and the suffix read back from the on-disk
// segments is record-for-record the graph's own mutation history over
// (checkpoint, asOf].
func TestSnapshotAtReconstructs(t *testing.T) {
	fs := NewFaultFS(21)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit, KeepGraphLog: true, RetainCheckpoints: 3})
	s := newScripted(t, g, 21)
	wms := ckptEvery(t, s, m, 240, 60)
	for i := 0; i < 25; i++ { // live tail past the last checkpoint
		s.step()
	}
	if len(wms) != 4 {
		t.Fatalf("took %d checkpoints, want 4", len(wms))
	}
	retained := wms[1:] // RetainCheckpoints=3 drops the oldest

	full, complete := g.Feed(0).Pull()
	if !complete {
		t.Fatal("KeepGraphLog graph reported a truncated log")
	}

	probes := []uint64{retained[0], retained[1], retained[1] + 7, retained[2], g.LastSeq()}
	for _, asOf := range probes {
		base, suffix, err := m.SnapshotAt(asOf)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", asOf, err)
		}
		baseWM := asOf - uint64(len(suffix))

		// The base must sit on a retained checkpoint watermark.
		found := false
		for _, w := range retained {
			if w == baseWM {
				found = true
			}
		}
		if !found {
			t.Fatalf("SnapshotAt(%d) based on watermark %d, not a retained checkpoint %v", asOf, baseWM, retained)
		}
		sameTriples(t, replayPrefix(t, g, baseWM), base)

		// The on-disk suffix must match the in-memory history exactly.
		for j, mu := range suffix {
			want := full[int(baseWM)+j]
			if mu.Seq != want.Seq || mu.Op != want.Op || mu.T.IdentityKey() != want.T.IdentityKey() {
				t.Fatalf("SnapshotAt(%d) suffix[%d] = {%d %v %v}, want {%d %v %v}",
					asOf, j, mu.Seq, mu.Op, mu.T, want.Seq, want.Op, want.T)
			}
		}
		if len(suffix) > 0 && suffix[len(suffix)-1].Seq != asOf {
			t.Fatalf("SnapshotAt(%d) suffix ends at %d", asOf, suffix[len(suffix)-1].Seq)
		}
	}

	// Repeated reads at the same watermark share the cached base.
	b1, _, err := m.SnapshotAt(retained[0] + 3)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := m.SnapshotAt(retained[0] + 5)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("as-of reads off the same checkpoint did not share the cached base")
	}
	_ = m.Close()
}

// TestSnapshotAtBounds pins the two failure edges: watermarks below the
// oldest retained checkpoint return ErrOutsideRetention, watermarks
// beyond the graph's are a plain error.
func TestSnapshotAtBounds(t *testing.T) {
	fs := NewFaultFS(23)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit}) // default retention: newest only
	s := newScripted(t, g, 23)
	wms := ckptEvery(t, s, m, 120, 40)
	if n := m.RetainedCheckpoints(); n != 1 {
		t.Fatalf("default retention kept %d checkpoints, want 1", n)
	}
	if _, _, err := m.SnapshotAt(wms[0]); !errors.Is(err, ErrOutsideRetention) {
		t.Fatalf("SnapshotAt(%d) below retention: %v, want ErrOutsideRetention", wms[0], err)
	}
	if _, _, err := m.SnapshotAt(g.LastSeq() + 10); err == nil || errors.Is(err, ErrOutsideRetention) {
		t.Fatalf("SnapshotAt beyond the watermark: %v", err)
	}
	// The newest checkpoint itself (and everything after) stays readable.
	if _, _, err := m.SnapshotAt(wms[len(wms)-1]); err != nil {
		t.Fatalf("SnapshotAt at the retained checkpoint: %v", err)
	}
	_ = m.Close()
}

// TestRetentionSurvivesReopen checks the on-disk side of retention:
// RetainCheckpoints keeps exactly N checkpoint files plus the segments
// needed to serve them, and a reopened manager rebuilds its retention
// index from the directory and serves the same as-of reads.
func TestRetentionSurvivesReopen(t *testing.T) {
	fs := NewFaultFS(29)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit, KeepGraphLog: true, RetainCheckpoints: 2})
	s := newScripted(t, g, 29)
	wms := ckptEvery(t, s, m, 200, 40)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := fs.ReadDir(testDir)
	if err != nil {
		t.Fatal(err)
	}
	var ckptFiles int
	for _, n := range names {
		if strings.HasPrefix(n, ckptPrefix) {
			ckptFiles++
		}
	}
	if ckptFiles != 2 {
		t.Fatalf("disk holds %d checkpoints, want 2 (files: %v)", ckptFiles, names)
	}

	g2, m2, info := mustOpen(t, fs, Options{Sync: SyncEachCommit, RetainCheckpoints: 2})
	if info.RecoveredLSN != g.LastSeq() {
		t.Fatalf("recovered LSN %d, want %d", info.RecoveredLSN, g.LastSeq())
	}
	if n := m2.RetainedCheckpoints(); n != 2 {
		t.Fatalf("reopened manager indexes %d checkpoints, want 2", n)
	}
	sameTriples(t, g, g2)

	oldest := wms[len(wms)-2]
	asOf := oldest + 11
	base, suffix, err := m2.SnapshotAt(asOf)
	if err != nil {
		t.Fatalf("SnapshotAt(%d) after reopen: %v", asOf, err)
	}
	if got := asOf - uint64(len(suffix)); got != oldest {
		t.Fatalf("reopened as-of based on %d, want oldest retained checkpoint %d", got, oldest)
	}
	sameTriples(t, replayPrefix(t, g, oldest), base)

	// Reconstruct the full asOf state from base + suffix and compare
	// against a prefix replay of the original history.
	ref := kg.NewGraphWithShards(2)
	copyDicts(t, ref, g)
	baseMuts, _ := g.Feed(0).Pull()
	for _, mu := range append(baseMuts[:oldest:oldest], suffix...) {
		switch mu.Op {
		case kg.OpAssert:
			if added, err := ref.AssertNew(mu.T); err != nil || !added {
				t.Fatalf("replay LSN %d: added=%v err=%v", mu.Seq, added, err)
			}
		case kg.OpRetract:
			if !ref.Retract(mu.T) {
				t.Fatalf("replay LSN %d: retract failed", mu.Seq)
			}
		}
	}
	sameTriples(t, replayPrefix(t, g, asOf), ref)

	if _, _, err := m2.SnapshotAt(wms[0]); !errors.Is(err, ErrOutsideRetention) {
		t.Fatalf("SnapshotAt(%d) after reopen: %v, want ErrOutsideRetention", wms[0], err)
	}
	_ = m2.Close()
}

// RetainAge is a wall-clock floor under count-based eviction: a
// checkpoint storm cannot age history out while every checkpoint is
// younger than the floor, and once they age past it the sweep falls
// back to the RetainCheckpoints budget. Runs on a fake clock.
func TestRetainAgeFloorSweep(t *testing.T) {
	fs := NewFaultFS(37)
	g, m, _ := mustOpen(t, fs, Options{
		Sync: SyncEachCommit, KeepGraphLog: true,
		RetainCheckpoints: 2, RetainAge: time.Hour,
	})
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m.now = func() time.Time { return clock }
	s := newScripted(t, g, 37)

	ckptFiles := func() int {
		t.Helper()
		names, err := fs.ReadDir(testDir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, name := range names {
			if strings.HasPrefix(name, ckptPrefix) {
				n++
			}
		}
		return n
	}

	// A storm: five checkpoints a minute apart. All are younger than the
	// hour floor, so none may be evicted despite RetainCheckpoints=2.
	var wms []uint64
	for i := 0; i < 5; i++ {
		for j := 0; j < 20; j++ {
			s.step()
		}
		wm, err := m.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		wms = append(wms, wm)
		clock = clock.Add(time.Minute)
	}
	if n := m.RetainedCheckpoints(); n != 5 {
		t.Fatalf("retained %d checkpoints during the storm, want all 5 (age floor)", n)
	}
	if n := ckptFiles(); n != 5 {
		t.Fatalf("disk holds %d checkpoint files during the storm, want 5", n)
	}
	// The whole window must stay readable as-of.
	if _, _, err := m.SnapshotAt(wms[0]); err != nil {
		t.Fatalf("SnapshotAt(oldest stormed checkpoint): %v", err)
	}

	// Age everything past the floor; the next checkpoint's sweep falls
	// back to the count budget.
	clock = clock.Add(2 * time.Hour)
	for j := 0; j < 20; j++ {
		s.step()
	}
	last, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if n := m.RetainedCheckpoints(); n != 2 {
		t.Fatalf("retained %d checkpoints after aging, want 2 (count budget)", n)
	}
	if n := ckptFiles(); n != 2 {
		t.Fatalf("disk holds %d checkpoint files after aging, want 2", n)
	}
	// The survivors are the two newest, still readable.
	for _, wm := range []uint64{wms[4], last} {
		if _, _, err := m.SnapshotAt(wm); err != nil {
			t.Fatalf("SnapshotAt(%d) after sweep: %v", wm, err)
		}
	}
	// History below the floor is gone.
	if _, _, err := m.SnapshotAt(wms[0]); err == nil {
		t.Fatal("SnapshotAt below the retention floor succeeded, want error")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
