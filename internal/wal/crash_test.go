package wal

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"saga/internal/kg"
)

// The crash matrix: run a scripted workload against a fault-armed
// FaultFS, kill the writer at an arbitrary point (every Nth byte offset,
// or the Nth fsync), collapse the filesystem to its post-reset image,
// recover, and require — for every kill point —
//
//  1. no panic, and Open succeeds;
//  2. the recovered watermark W satisfies acked <= W <= applied, where
//     acked is the writer's DurableLSN at the kill (no fsync-acknowledged
//     mutation is ever lost);
//  3. the recovered state equals a from-scratch replay of the first W
//     mutations of the writer's history (watermark consistency: a prefix,
//     exactly);
//  4. recovered entity records honor acknowledged in-place updates: the
//     script's popularity updates are monotone per entity, so every
//     recovered record must sit between the value at the last
//     acknowledged commit and the final value the writer applied;
//  5. the recovered incarnation can keep writing, checkpoint, close, and
//     reopen cleanly (the repaired log stays contiguous).
//
// Seeds come from WAL_CRASH_SEEDS (comma-separated) so scripts/crashtest.sh
// can widen the sweep; WAL_CRASH_POINTS controls kill-point density.

func crashSeeds(t *testing.T) []int64 {
	env := os.Getenv("WAL_CRASH_SEEDS")
	if env == "" {
		env = "1,2,3"
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("WAL_CRASH_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func crashPoints() int {
	if env := os.Getenv("WAL_CRASH_POINTS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return 40
}

const scenarioSteps = 400

// runScenario drives the scripted workload for one seed over fs until it
// completes or the first injected failure, returning the writer graph
// (with its full mutation history) and the fsync-acknowledged watermark
// at the moment of death.
func runScenario(t *testing.T, seed int64, fs *FaultFS) (g *kg.Graph, acked, applied uint64, ackedPops, finalPops map[kg.EntityID]float64) {
	t.Helper()
	g = kg.NewGraphWithShards(4)
	m, _, err := Open(testDir, g, Options{FS: fs, Sync: SyncEachCommit, KeepGraphLog: true})
	if err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("Open failed with a non-injected error: %v", err)
		}
		return g, 0, g.LastSeq(), nil, nil
	}
	s := newScripted(t, g, seed)
	broken := false
	for i := 0; i < scenarioSteps; i++ {
		s.step()
		var err error
		synced := false
		switch {
		case i%90 == 89:
			_, err = m.Checkpoint()
			synced = err == nil
		case i%7 == 6:
			_, err = m.Commit()
			synced = err == nil
		}
		if synced {
			ackedPops = s.snapshotPops()
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("step %d failed with a non-injected error: %v", i, err)
			}
			broken = true
			break
		}
	}
	if !broken {
		switch err := m.Close(); {
		case err == nil:
			ackedPops = s.snapshotPops()
		case !errors.Is(err, ErrInjected):
			t.Fatalf("Close failed with a non-injected error: %v", err)
		}
	}
	return g, m.DurableLSN(), g.LastSeq(), ackedPops, s.snapshotPops()
}

// checkRecovery reopens the crashed image and enforces the matrix
// invariants, then runs the continuation leg.
func checkRecovery(t *testing.T, label string, writer *kg.Graph, acked, applied uint64, ackedPops, finalPops map[kg.EntityID]float64, crashed *FaultFS) {
	t.Helper()
	g2 := kg.NewGraphWithShards(4)
	m2, info, err := Open(testDir, g2, Options{FS: crashed, Sync: SyncEachCommit, KeepGraphLog: true})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v (info %+v)", label, err, info)
	}
	wm := info.RecoveredLSN
	if wm != g2.LastSeq() {
		t.Fatalf("%s: info says LSN %d but graph watermark is %d", label, wm, g2.LastSeq())
	}
	if wm < acked {
		t.Fatalf("%s: recovered LSN %d lost fsync-acknowledged mutations (acked %d); diagnostics: %v",
			label, wm, acked, info.Diagnostics)
	}
	if wm > applied {
		t.Fatalf("%s: recovered LSN %d beyond anything applied (%d)", label, wm, applied)
	}
	sameTriples(t, replayPrefix(t, writer, wm), g2)

	// Entity-record durability: popularity updates are monotone in the
	// script, so a recovered record must never run ahead of what the
	// writer applied, nor behind what a successful commit acknowledged.
	for id, final := range finalPops {
		e := g2.Entity(id)
		if e == nil {
			continue // the record never reached the durable log
		}
		if e.Popularity > final {
			t.Fatalf("%s: entity %d recovered popularity %v beyond anything written (%v)",
				label, id, e.Popularity, final)
		}
		if floor, ok := ackedPops[id]; ok && e.Popularity < floor {
			t.Fatalf("%s: entity %d recovered popularity %v lost acknowledged update (floor %v)",
				label, id, e.Popularity, floor)
		}
	}

	// Continuation leg: the recovered incarnation must be fully writable
	// and its own shutdown/reopen must round-trip.
	id, err := g2.AddEntity(kg.Entity{Key: "post-crash", Name: "survivor"})
	if err != nil {
		t.Fatalf("%s: post-recovery AddEntity: %v", label, err)
	}
	pred, err := g2.AddPredicate(kg.Predicate{Name: "post-crash-pred"})
	if err != nil {
		t.Fatalf("%s: post-recovery AddPredicate: %v", label, err)
	}
	for i := 0; i < 5; i++ {
		if err := g2.Assert(kg.Triple{Subject: id, Predicate: pred, Object: kg.IntValue(int64(i))}); err != nil {
			t.Fatalf("%s: post-recovery Assert: %v", label, err)
		}
	}
	if _, err := m2.Commit(); err != nil {
		t.Fatalf("%s: post-recovery Commit: %v", label, err)
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatalf("%s: post-recovery Checkpoint: %v", label, err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("%s: post-recovery Close: %v", label, err)
	}

	g3 := kg.NewGraphWithShards(4)
	m3, info3, err := Open(testDir, g3, Options{FS: crashed})
	if err != nil {
		t.Fatalf("%s: reopen after continuation: %v", label, err)
	}
	if g3.LastSeq() != g2.LastSeq() {
		t.Fatalf("%s: continuation lost LSNs: %d vs %d (diagnostics %v)",
			label, g3.LastSeq(), g2.LastSeq(), info3.Diagnostics)
	}
	sameTriples(t, g2, g3)
	_ = m3.Close()
}

func TestCrashMatrixWriteKills(t *testing.T) {
	for _, seed := range crashSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// Probe: full run, no faults, to learn the byte budget.
			probe := NewFaultFS(seed)
			runScenario(t, seed, probe)
			total := probe.BytesAccepted()
			if total == 0 {
				t.Fatal("probe run wrote nothing")
			}
			points := crashPoints()
			stride := total / int64(points)
			if stride < 1 {
				stride = 1
			}
			for off := int64(0); off <= total; off += stride {
				fs := NewFaultFS(seed)
				fs.SetWriteBudget(off)
				writer, acked, applied, ackedPops, finalPops := runScenario(t, seed, fs)
				checkRecovery(t, fmt.Sprintf("seed=%d kill@%d/%d", seed, off, total),
					writer, acked, applied, ackedPops, finalPops, fs.Crash())
			}
		})
	}
}

func TestCrashMatrixSyncFailures(t *testing.T) {
	for _, seed := range crashSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// Every sync count up to the cap: sync #n fails and the
			// process dies with it.
			const maxSyncs = 30
			for n := 0; n < maxSyncs; n++ {
				fs := NewFaultFS(seed)
				fs.SetSyncBudget(n)
				writer, acked, applied, ackedPops, finalPops := runScenario(t, seed, fs)
				checkRecovery(t, fmt.Sprintf("seed=%d sync-fail@%d", seed, n),
					writer, acked, applied, ackedPops, finalPops, fs.Crash())
			}
		})
	}
}
