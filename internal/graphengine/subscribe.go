package graphengine

import (
	"errors"
	"sort"
	"sync"
	"time"

	"saga/internal/kg"
	"saga/internal/metrics"
)

// Live subscriptions: standing conjunctive queries whose answer sets are
// maintained incrementally against the graph's changefeed. A hub
// goroutine (one per Engine, started lazily) pulls mutation batches
// through a single kg.Changefeed and delta-joins each mutation against
// the subscriptions whose clauses mention the mutation's predicate — a
// predicate-keyed dispatch index (byPred) keeps every other standing
// query entirely off the per-mutation path:
//
//   - an assert that θ-unifies with a clause triggers a residual solve
//     of the θ-substituted conjunction through the Engine's plan cache
//     (the substituted shape is cached like any other), adding bindings
//     the subscriber has not seen;
//   - a retract grounds against the current answer set: bindings whose
//     grounded clause instances include the retracted triple are
//     re-verified clause by clause (HasFact) and retracted if dead.
//
// Residual solves and re-verification run against the live graph, which
// may be ahead of the mutation being processed; both operations are
// convergent — a binding is only added if it holds now, only removed if
// it fails now — so the maintained set always matches a from-scratch
// solve once the feed drains. If the changefeed reports a floor pass
// (log truncation), the hub resets the cursor and falls back to a full
// re-solve per subscription, emitting the difference.
//
// Delivery is per-subscriber: events coalesce for a configurable window,
// adds and retracts of the same binding cancel in the pending set, a
// full channel leaves the pending set accumulating (backpressure), and
// a subscriber whose pending set outgrows its bound is evicted — its
// channel closes and Err reports ErrSlowSubscriber.

// ErrSlowSubscriber is reported by Subscription.Err after the hub
// evicted the subscriber because its pending delta outgrew MaxPending
// while its channel stayed full.
var ErrSlowSubscriber = errors.New("graphengine: subscriber evicted: pending delta exceeded MaxPending")

// Defaults for SubscribeOptions zero fields.
const (
	defaultSubBuffer     = 16
	defaultSubCoalesce   = 10 * time.Millisecond
	defaultSubMaxPending = 4096
)

// SubscribeOptions configure one subscription. The zero value is ready
// to use.
type SubscribeOptions struct {
	// Buffer is the event channel's capacity (default 16, minimum 1 —
	// the initial snapshot event must always fit).
	Buffer int

	// Coalesce is how long deltas accumulate before an event is
	// emitted (default 10ms). A longer window batches more mutations
	// per event and lets more add/retract pairs cancel.
	Coalesce time.Duration

	// MaxPending bounds the undelivered delta (adds + retracts) the
	// hub buffers for this subscriber while its channel is full;
	// beyond it the subscriber is evicted (default 4096).
	MaxPending int
}

// SubscriptionEvent is one incremental update to a standing query's
// answer set. Adds and Retracts are disjoint and each sorted by the
// bindings' key tuples. Watermark is the mutation sequence the answer
// set now reflects. The first event on every subscription has Reset
// set: its Adds carry the full answer set at Watermark.
type SubscriptionEvent struct {
	Adds      []Binding
	Retracts  []Binding
	Watermark uint64
	Reset     bool
}

// Subscription is a live standing query. Read events from C; the
// channel closes when the subscription ends (Close, or eviction — Err
// distinguishes the two).
type Subscription struct {
	// C delivers the answer-set deltas, starting with the Reset
	// snapshot event.
	C <-chan SubscriptionEvent

	clauses []Clause
	ch      chan SubscriptionEvent
	opts    SubscribeOptions
	hub     *subHub

	// Hub-owned state, guarded by the hub's mutex.
	current   map[string]Binding // answer set by key tuple
	applied   uint64             // watermark current reflects
	pendAdds  map[string]Binding
	pendRets  map[string]Binding
	pendWM    uint64    // watermark the pending delta reflects
	pendSince time.Time // when the oldest pending delta accumulated
	delivered uint64    // watermark of the last delivered event
	err       error
	done      bool
}

// Err reports why the subscription ended: nil after Close,
// ErrSlowSubscriber after eviction. Valid once C is closed.
func (s *Subscription) Err() error { return s.err }

// subHub is the per-Engine subscription dispatcher: one changefeed, one
// goroutine, all registered subscriptions.
type subHub struct {
	e *Engine

	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	byPred  map[kg.PredicateID]map[*Subscription]struct{}
	feed    *kg.Changefeed
	running bool
	stop    chan struct{}

	evictions metrics.Counter
}

// SubscriptionStats is a point-in-time snapshot of the Engine's
// subscription hub, for the health surface.
type SubscriptionStats struct {
	// Subscribers is the number of live subscriptions.
	Subscribers int
	// SlowestLag is the largest gap, in mutation sequence numbers,
	// between the graph's watermark and a subscriber's last delivered
	// event.
	SlowestLag uint64
	// Evictions counts subscribers dropped for falling too far behind,
	// over the Engine's lifetime.
	Evictions int64
}

// Subscribe registers a standing conjunctive query. The full answer set
// is solved immediately and delivered as the first event (Reset set);
// subsequent events carry incremental adds and retracts as the graph
// mutates. Close the subscription to stop delivery and release the
// slot; a subscriber that stops draining C and overflows its pending
// bound is evicted (see ErrSlowSubscriber).
func (e *Engine) Subscribe(clauses []Clause, opts SubscribeOptions) (*Subscription, error) {
	if err := validateClauses(clauses); err != nil {
		return nil, err
	}
	if opts.Buffer < 1 {
		opts.Buffer = defaultSubBuffer
	}
	if opts.Coalesce <= 0 {
		opts.Coalesce = defaultSubCoalesce
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = defaultSubMaxPending
	}
	h := e.subHub()
	s := &Subscription{
		clauses:  clauses,
		ch:       make(chan SubscriptionEvent, opts.Buffer),
		opts:     opts,
		hub:      h,
		current:  make(map[string]Binding),
		pendAdds: make(map[string]Binding),
		pendRets: make(map[string]Binding),
	}
	s.C = s.ch

	// Solve the snapshot under the hub lock: the hub cannot process a
	// feed batch between the solve and the registration, so the first
	// delta event follows the snapshot with no gap and no overlap (the
	// hub skips mutations at or below the snapshot watermark via the
	// delivered/pending watermark anyway — processing is idempotent —
	// but the lock keeps the first event's semantics exact).
	h.mu.Lock()
	defer h.mu.Unlock()
	wm := e.g.LastSeq()
	var adds []Binding
	for b, err := range e.StreamConjunctive(clauses, QueryOptions{}) {
		if err != nil {
			return nil, err
		}
		s.current[string(appendKeyTuple(nil, BindingKey(b)))] = b
		adds = append(adds, b)
	}
	sortBindingsByKey(adds)
	s.applied, s.delivered = wm, wm
	s.ch <- SubscriptionEvent{Adds: adds, Watermark: wm, Reset: true}

	if h.subs == nil {
		h.subs = make(map[*Subscription]struct{})
	}
	h.subs[s] = struct{}{}
	h.indexLocked(s)
	if !h.running {
		h.feed = e.g.Feed(wm)
		h.stop = make(chan struct{})
		h.running = true
		go h.run(h.stop)
	}
	return s, nil
}

// Close ends the subscription: the hub stops maintaining its answer set
// and the channel closes after any in-flight event drains. Closing an
// already closed (or evicted) subscription is a no-op.
func (s *Subscription) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	close(s.ch)
	delete(h.subs, s)
	h.unindexLocked(s)
}

// indexLocked registers the subscription under every predicate its
// clauses mention — the dispatch index pollLocked and the derived-delta
// path route mutations through, so a mutation batch only ever touches
// the subscriptions whose clauses could unify with it.
func (h *subHub) indexLocked(s *Subscription) {
	if h.byPred == nil {
		h.byPred = make(map[kg.PredicateID]map[*Subscription]struct{})
	}
	for _, c := range s.clauses {
		set := h.byPred[c.Predicate]
		if set == nil {
			set = make(map[*Subscription]struct{})
			h.byPred[c.Predicate] = set
		}
		set[s] = struct{}{}
	}
}

// unindexLocked removes the subscription from the dispatch index.
func (h *subHub) unindexLocked(s *Subscription) {
	for _, c := range s.clauses {
		if set := h.byPred[c.Predicate]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(h.byPred, c.Predicate)
			}
		}
	}
}

// SubscriptionStats snapshots the hub. Engines with no subscriptions
// report zeros.
func (e *Engine) SubscriptionStats() SubscriptionStats {
	e.mu.Lock()
	h := e.hub
	e.mu.Unlock()
	if h == nil {
		return SubscriptionStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := SubscriptionStats{
		Subscribers: len(h.subs),
		Evictions:   h.evictions.Value(),
	}
	wm := h.e.g.LastSeq()
	for s := range h.subs {
		if lag := wm - s.delivered; lag > st.SlowestLag {
			st.SlowestLag = lag
		}
	}
	return st
}

// subHub returns the Engine's hub, creating it on first use.
func (e *Engine) subHub() *subHub {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hub == nil {
		e.hub = &subHub{e: e}
	}
	return e.hub
}

// run is the hub goroutine: pull the changefeed, delta-join, flush due
// subscribers, reap closed ones. It exits when every subscription is
// gone, and a later Subscribe starts a fresh one.
func (h *subHub) run(stop chan struct{}) {
	tick := time.NewTicker(h.tickInterval())
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		h.mu.Lock()
		if len(h.subs) == 0 {
			h.running = false
			h.mu.Unlock()
			return
		}
		h.pollLocked()
		h.flushLocked()
		h.mu.Unlock()
		tick.Reset(h.tickInterval())
	}
}

// tickInterval is the poll period: half the smallest coalescing window,
// bounded below.
func (h *subHub) tickInterval() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	min := defaultSubCoalesce
	for s := range h.subs {
		if s.opts.Coalesce < min {
			min = s.opts.Coalesce
		}
	}
	if min /= 2; min < time.Millisecond {
		min = time.Millisecond
	}
	return min
}

// pollLocked pulls the next mutation batch and merges its deltas into
// the affected subscriptions' pending sets. Dispatch is predicate-keyed:
// each mutation only visits the subscriptions whose clauses mention its
// predicate (byPred), so standing queries over other predicates cost
// zero per batch — not even a failed unify. Every subscription still
// advances its applied watermark: a mutation whose predicate no clause
// mentions cannot change any answer set. A floor pass falls back to a
// full re-solve per subscription.
func (h *subHub) pollLocked() {
	muts, complete := h.feed.Pull()
	if !complete {
		h.feed.Reset(h.e.g.LastSeq())
		for s := range h.subs {
			h.resolveFullLocked(s, h.feed.Cursor())
		}
		return
	}
	if len(muts) == 0 {
		return
	}
	for _, mu := range muts {
		for s := range h.byPred[mu.T.Predicate] {
			// Mutations at or below the subscription's snapshot (or
			// fallback re-solve) watermark are already reflected.
			if mu.Seq <= s.applied {
				continue
			}
			switch mu.Op {
			case kg.OpAssert:
				h.deltaAssertLocked(s, mu.T)
			case kg.OpRetract:
				h.deltaRetractLocked(s, mu.T)
			}
		}
	}
	wm := h.feed.Cursor()
	for s := range h.subs {
		if wm > s.applied {
			s.applied = wm
		}
		s.notePendingLocked(s.applied)
	}
}

// notePendingLocked advances the subscription's pending watermark and
// stamps the coalescing clock on the first delta of a window.
func (s *Subscription) notePendingLocked(wm uint64) {
	if wm > s.pendWM {
		s.pendWM = wm
	}
	if s.pendSince.IsZero() && len(s.pendAdds)+len(s.pendRets) > 0 {
		s.pendSince = time.Now()
	}
}

// deltaAssertLocked joins one asserted triple against the standing
// query: every clause it unifies with seeds a residual solve whose rows
// extend the answer set.
func (h *subHub) deltaAssertLocked(s *Subscription, t kg.Triple) {
	for i := range s.clauses {
		theta, ok := unifyClause(s.clauses[i], t)
		if !ok {
			continue
		}
		residual, ok := substituteClauses(s.clauses, theta)
		if !ok {
			continue // θ puts a non-entity in a subject slot: no rows
		}
		for b, err := range h.e.StreamConjunctive(residual, QueryOptions{}) {
			if err != nil {
				break
			}
			// Merge θ back: residual rows lack the substituted vars.
			full := make(Binding, len(b)+len(theta))
			for k, v := range theta {
				full[k] = v
			}
			for k, v := range b {
				full[k] = v
			}
			key := string(appendKeyTuple(nil, BindingKey(full)))
			if _, have := s.current[key]; have {
				continue
			}
			s.current[key] = full
			s.addPendingLocked(key, full, true)
		}
	}
}

// deltaRetractLocked removes answer-set bindings the retracted triple
// supported: bindings grounding some clause to exactly this triple are
// re-verified clause by clause and retracted if any grounded instance
// is gone.
func (h *subHub) deltaRetractLocked(s *Subscription, t kg.Triple) {
	tk := t.IdentityKey()
	for key, b := range s.current {
		if !bindingGrounds(s.clauses, b, tk) {
			continue
		}
		if bindingHolds(h.e.read(), s.clauses, b) {
			continue
		}
		delete(s.current, key)
		s.addPendingLocked(key, b, false)
	}
}

// addPendingLocked merges one delta into the pending set; an add and a
// retract of the same binding cancel.
func (s *Subscription) addPendingLocked(key string, b Binding, add bool) {
	if add {
		if _, ok := s.pendRets[key]; ok {
			delete(s.pendRets, key)
			return
		}
		s.pendAdds[key] = b
		return
	}
	if _, ok := s.pendAdds[key]; ok {
		delete(s.pendAdds, key)
		return
	}
	s.pendRets[key] = b
}

// resolveFullLocked recomputes the answer set from scratch (the floor-
// pass fallback) and merges the difference into the pending set.
func (h *subHub) resolveFullLocked(s *Subscription, wm uint64) {
	fresh := make(map[string]Binding)
	for b, err := range h.e.StreamConjunctive(s.clauses, QueryOptions{}) {
		if err != nil {
			return // leave current as-is; next pass retries
		}
		fresh[string(appendKeyTuple(nil, BindingKey(b)))] = b
	}
	for key, b := range fresh {
		if _, have := s.current[key]; !have {
			s.addPendingLocked(key, b, true)
		}
	}
	for key, b := range s.current {
		if _, still := fresh[key]; !still {
			s.addPendingLocked(key, b, false)
		}
	}
	s.current = fresh
	s.applied = wm
	s.notePendingLocked(wm)
}

// flushLocked emits due pending deltas and evicts subscribers whose
// pending sets outgrew their bound while their channels stayed full.
func (h *subHub) flushLocked() {
	now := time.Now()
	for s := range h.subs {
		n := len(s.pendAdds) + len(s.pendRets)
		if n == 0 {
			continue
		}
		if now.Sub(s.pendSince) < s.opts.Coalesce {
			continue
		}
		ev := SubscriptionEvent{
			Adds:      make([]Binding, 0, len(s.pendAdds)),
			Retracts:  make([]Binding, 0, len(s.pendRets)),
			Watermark: s.pendWM,
		}
		for _, b := range s.pendAdds {
			ev.Adds = append(ev.Adds, b)
		}
		for _, b := range s.pendRets {
			ev.Retracts = append(ev.Retracts, b)
		}
		sortBindingsByKey(ev.Adds)
		sortBindingsByKey(ev.Retracts)
		select {
		case s.ch <- ev:
			s.pendAdds = make(map[string]Binding)
			s.pendRets = make(map[string]Binding)
			s.pendSince = time.Time{}
			s.delivered = s.pendWM
		default:
			// Channel full: keep accumulating. Past the bound, evict.
			if n > s.opts.MaxPending {
				s.err = ErrSlowSubscriber
				s.done = true
				close(s.ch)
				delete(h.subs, s)
				h.unindexLocked(s)
				h.evictions.Inc()
			}
		}
	}
}

// unifyClause matches one clause against a concrete triple, returning
// the variable substitution θ. Repeated variables must bind
// consistently (Equal semantics, matching the executor's bindVar).
func unifyClause(c Clause, t kg.Triple) (Binding, bool) {
	if c.Predicate != t.Predicate {
		return nil, false
	}
	theta := make(Binding, 2)
	if c.Subject.Var != "" {
		theta[c.Subject.Var] = kg.EntityValue(t.Subject)
	} else if !c.Subject.Const.IsEntity() || c.Subject.Const.Entity != t.Subject {
		return nil, false
	}
	if c.Object.Var != "" {
		if prev, ok := theta[c.Object.Var]; ok {
			if !prev.Equal(t.Object) {
				return nil, false
			}
		} else {
			theta[c.Object.Var] = t.Object
		}
	} else if c.Object.Const.MapKey() != t.Object.MapKey() {
		return nil, false
	}
	return theta, true
}

// substituteClauses grounds θ's variables into the query, leaving the
// remaining variables free. ok is false when θ would place a non-entity
// value in a subject slot — such a conjunction has no rows (subjects
// are entities) and is also structurally invalid.
func substituteClauses(clauses []Clause, theta Binding) ([]Clause, bool) {
	out := make([]Clause, len(clauses))
	for i, c := range clauses {
		if c.Subject.Var != "" {
			if v, ok := theta[c.Subject.Var]; ok {
				if !v.IsEntity() {
					return nil, false
				}
				c.Subject = Term{Const: v}
			}
		}
		if c.Object.Var != "" {
			if v, ok := theta[c.Object.Var]; ok {
				c.Object = Term{Const: v}
			}
		}
		out[i] = c
	}
	return out, true
}

// bindingGrounds reports whether some clause, grounded under the
// complete binding b, is exactly the triple with identity tk.
func bindingGrounds(clauses []Clause, b Binding, tk kg.TripleKey) bool {
	for _, c := range clauses {
		sv, ok := resolve(c.Subject, b)
		if !ok || !sv.IsEntity() {
			continue
		}
		ov, ok := resolve(c.Object, b)
		if !ok {
			continue
		}
		if (kg.TripleKey{Subject: sv.Entity, Predicate: c.Predicate, Object: ov.MapKey()}) == tk {
			return true
		}
	}
	return false
}

// bindingHolds re-verifies a complete binding: every clause's grounded
// instance must still be asserted. It takes the solver's read surface so
// a clause over a derived predicate verifies against the union view.
func bindingHolds(g conjGraph, clauses []Clause, b Binding) bool {
	for _, c := range clauses {
		sv, ok := resolve(c.Subject, b)
		if !ok || !sv.IsEntity() {
			return false
		}
		ov, ok := resolve(c.Object, b)
		if !ok {
			return false
		}
		if !g.HasFact(sv.Entity, c.Predicate, ov) {
			return false
		}
	}
	return true
}

// sortBindingsByKey orders bindings by their key tuples — the same
// order QueryConjunctive returns and that events are defined over.
func sortBindingsByKey(bs []Binding) {
	if len(bs) < 2 {
		return
	}
	keys := make([][]kg.ValueKey, len(bs))
	order := make([]int, len(bs))
	for i, b := range bs {
		keys[i] = BindingKey(b)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return compareKeyRows(keys[order[a]], keys[order[b]]) < 0
	})
	sorted := make([]Binding, len(bs))
	for i, oi := range order {
		sorted[i] = bs[oi]
	}
	copy(bs, sorted)
}
