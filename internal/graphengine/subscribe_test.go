package graphengine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"saga/internal/kg"
)

// subClient mirrors a subscription's answer set by applying its event
// stream, enforcing the delivery invariants as it goes: the first event
// (and only the first) is a Reset snapshot, adds never duplicate a held
// binding, retracts never miss one, and each event's slices arrive
// sorted by key tuple.
type subClient struct {
	mu   sync.Mutex
	set  map[string]Binding
	err  error
	done chan struct{}
}

func bindingMapKey(b Binding) string {
	return string(appendKeyTuple(nil, BindingKey(b)))
}

func checkSorted(bs []Binding) error {
	for i := 1; i < len(bs); i++ {
		if compareKeyRows(BindingKey(bs[i-1]), BindingKey(bs[i])) >= 0 {
			return fmt.Errorf("event bindings not strictly sorted at %d", i)
		}
	}
	return nil
}

func runSubClient(sub *Subscription) *subClient {
	c := &subClient{set: make(map[string]Binding), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		first := true
		for ev := range sub.C {
			c.mu.Lock()
			if c.err == nil {
				c.err = c.applyLocked(ev, first)
			}
			c.mu.Unlock()
			first = false
		}
	}()
	return c
}

func (c *subClient) applyLocked(ev SubscriptionEvent, first bool) error {
	if first != ev.Reset {
		return fmt.Errorf("reset=%v on event first=%v", ev.Reset, first)
	}
	if err := checkSorted(ev.Adds); err != nil {
		return fmt.Errorf("adds: %w", err)
	}
	if err := checkSorted(ev.Retracts); err != nil {
		return fmt.Errorf("retracts: %w", err)
	}
	if ev.Reset {
		if len(ev.Retracts) != 0 {
			return errors.New("reset event carried retracts")
		}
		c.set = make(map[string]Binding, len(ev.Adds))
	}
	for _, b := range ev.Retracts {
		key := bindingMapKey(b)
		if _, ok := c.set[key]; !ok {
			return fmt.Errorf("retract of binding never delivered: %v", b)
		}
		delete(c.set, key)
	}
	for _, b := range ev.Adds {
		key := bindingMapKey(b)
		if _, ok := c.set[key]; ok {
			return fmt.Errorf("duplicate add of held binding: %v", b)
		}
		c.set[key] = b
	}
	return nil
}

// snapshot returns a copy of the mirrored set and any invariant error.
func (c *subClient) snapshot() (map[string]Binding, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Binding, len(c.set))
	for k, v := range c.set {
		out[k] = v
	}
	return out, c.err
}

// TestSubscriptionConvergesUnderConcurrentWriter races a mutating
// writer against several live subscriptions and requires every
// subscriber's mirrored answer set — built purely from delta events —
// to converge to a from-scratch solve at quiescence, with no duplicate
// adds and no unmatched retracts along the way. Run under -race this is
// also the subsystem's concurrency test.
func TestSubscriptionConvergesUnderConcurrentWriter(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g, ents, preds := newOverlayWorld(t)
			mutateOverlayWorld(t, g, rand.New(rand.NewSource(seed)), 120)
			eng := New(g)

			queries := overlayQueries(ents, preds)[:6]
			subs := make([]*Subscription, len(queries))
			clients := make([]*subClient, len(queries))
			for i, q := range queries {
				sub, err := eng.Subscribe(q, SubscribeOptions{Coalesce: 2 * time.Millisecond})
				if err != nil {
					t.Fatalf("Subscribe(q%d): %v", i, err)
				}
				defer sub.Close()
				subs[i] = sub
				clients[i] = runSubClient(sub)
			}

			// Concurrent writer: same workload shape as the overlay tests,
			// yielding now and then so hub polls interleave mid-history.
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				m := &ovMutator{t: t, g: g, rng: rand.New(rand.NewSource(seed * 101))}
				for i := 0; i < 600; i++ {
					m.step()
					if i%40 == 39 {
						time.Sleep(time.Millisecond)
					}
				}
			}()
			<-writerDone

			// Quiescence: every mirror must settle on the live answer set.
			for i, q := range queries {
				want := make(map[string]Binding)
				rows, err := eng.QueryConjunctive(q)
				if err != nil {
					t.Fatalf("quiescent solve q%d: %v", i, err)
				}
				for _, b := range rows {
					want[bindingMapKey(b)] = b
				}
				deadline := time.Now().Add(10 * time.Second)
				for {
					got, cerr := clients[i].snapshot()
					if cerr != nil {
						t.Fatalf("q%d: delivery invariant violated: %v", i, cerr)
					}
					if setsMatch(want, got) {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("q%d: mirror never converged: %d bindings, want %d", i, len(got), len(want))
					}
					time.Sleep(2 * time.Millisecond)
				}
			}

			// Clean shutdown: Close ends delivery with a nil Err.
			for i, sub := range subs {
				sub.Close()
				<-clients[i].done
				if err := sub.Err(); err != nil {
					t.Fatalf("q%d: Err after Close: %v", i, err)
				}
			}
			if st := eng.SubscriptionStats(); st.Subscribers != 0 || st.Evictions != 0 {
				t.Fatalf("stats after close: %+v", st)
			}
		})
	}
}

func setsMatch(want, got map[string]Binding) bool {
	if len(want) != len(got) {
		return false
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			return false
		}
	}
	return true
}

// TestSubscriptionDeltaEvents pins the basic delta semantics end to end:
// snapshot, incremental add, cancellation inside one coalescing window,
// and incremental retract.
func TestSubscriptionDeltaEvents(t *testing.T) {
	g, ents, preds := newOverlayWorld(t)
	seedTr := kg.Triple{Subject: ents[0], Predicate: preds[0], Object: kg.EntityValue(ents[1])}
	if err := g.Assert(seedTr); err != nil {
		t.Fatal(err)
	}
	eng := New(g)
	sub, err := eng.Subscribe(
		[]Clause{{Subject: V("x"), Predicate: preds[0], Object: V("y")}},
		SubscribeOptions{Coalesce: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ev := <-sub.C
	if !ev.Reset || len(ev.Adds) != 1 || len(ev.Retracts) != 0 {
		t.Fatalf("snapshot event: %+v", ev)
	}
	if ev.Watermark != g.LastSeq() {
		t.Fatalf("snapshot watermark %d, want %d", ev.Watermark, g.LastSeq())
	}

	tr := kg.Triple{Subject: ents[2], Predicate: preds[0], Object: kg.IntValue(7)}
	if err := g.Assert(tr); err != nil {
		t.Fatal(err)
	}
	ev = <-sub.C
	if ev.Reset || len(ev.Adds) != 1 || len(ev.Retracts) != 0 {
		t.Fatalf("add event: %+v", ev)
	}
	if got := ev.Adds[0]; got["x"].Entity != ents[2] || !got["y"].Equal(kg.IntValue(7)) {
		t.Fatalf("add binding: %v", got)
	}
	if ev.Watermark != g.LastSeq() {
		t.Fatalf("add watermark %d, want %d", ev.Watermark, g.LastSeq())
	}

	if !g.Retract(tr) {
		t.Fatal("retract failed")
	}
	ev = <-sub.C
	if len(ev.Adds) != 0 || len(ev.Retracts) != 1 {
		t.Fatalf("retract event: %+v", ev)
	}
	if got := ev.Retracts[0]; got["x"].Entity != ents[2] {
		t.Fatalf("retract binding: %v", got)
	}
}

// TestSubscriptionSlowClientEvicted: a subscriber that never drains its
// channel is evicted once its pending delta outgrows MaxPending — the
// channel closes, Err reports ErrSlowSubscriber, and the hub counts the
// eviction.
func TestSubscriptionSlowClientEvicted(t *testing.T) {
	g, ents, preds := newOverlayWorld(t)
	eng := New(g)
	sub, err := eng.Subscribe(
		[]Clause{{Subject: V("x"), Predicate: preds[0], Object: V("y")}},
		SubscribeOptions{Buffer: 1, Coalesce: time.Millisecond, MaxPending: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Never read: the buffered Reset event keeps the channel full while
	// distinct adds pile into the pending set.
	for i := 0; i < 64; i++ {
		if err := g.Assert(kg.Triple{Subject: ents[0], Predicate: preds[0], Object: kg.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.SubscriptionStats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow subscriber never evicted: %+v", eng.SubscriptionStats())
		}
		time.Sleep(time.Millisecond)
	}

	ev, ok := <-sub.C // the buffered snapshot
	if !ok || !ev.Reset {
		t.Fatalf("first receive: ok=%v ev=%+v", ok, ev)
	}
	for range sub.C { // drain to the close
	}
	if !errors.Is(sub.Err(), ErrSlowSubscriber) {
		t.Fatalf("Err after eviction: %v", sub.Err())
	}
	st := eng.SubscriptionStats()
	if st.Subscribers != 0 || st.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	sub.Close() // must be a no-op on an evicted subscription
}
