package graphengine

import (
	"math/rand"
	"testing"

	"saga/internal/kg"
)

// These tests pin the derived-state contract with log compaction
// (kg.Graph.TruncateLog, the durability layer's checkpoint hook): when
// the mutation-log floor passes a consumer's watermark, the incremental
// feed is incomplete and the consumer must fall back to a full rebuild —
// silently, and with a result identical to a from-scratch
// materialization.

func TestViewRefreshAfterTruncation(t *testing.T) {
	g, ids, p := incrFixture(t, 4, 30, 200, 11)
	e := New(g)
	v := e.Materialize(ViewDef{Name: "all"})

	// Mutate past the view's watermark, then compact the whole log away.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 80; i++ {
		s, o := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		tr := kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}
		if i%3 == 2 {
			g.Retract(tr)
		} else if err := g.Assert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if n := g.TruncateLog(g.LastSeq()); n == 0 {
		t.Fatal("TruncateLog dropped nothing")
	}

	v.Refresh()
	fresh := New(g).Materialize(ViewDef{Name: "fresh"})
	if v.Len() != fresh.Len() {
		t.Fatalf("refreshed view has %d triples, fresh materialization %d", v.Len(), fresh.Len())
	}
	for _, tr := range fresh.Triples() {
		if !v.Contains(tr) {
			t.Fatalf("refreshed view missing %v", tr)
		}
	}

	// Subsequent incremental refreshes work off the rebuilt watermark.
	extra := kg.Triple{Subject: ids[0], Predicate: p, Object: kg.EntityValue(ids[1])}
	g.Retract(extra)
	before := v.Len()
	v.Refresh()
	if want := before - 1; v.Len() != want && v.Len() != before {
		t.Fatalf("post-rebuild incremental refresh broke: len %d", v.Len())
	}
	if v.Contains(extra) {
		t.Fatal("retract after rebuild not applied")
	}
}

func TestSnapshotAfterTruncation(t *testing.T) {
	g, ids, p := incrFixture(t, 4, 30, 200, 21)
	e := New(g)
	s1 := e.Snapshot()
	if s1 == nil {
		t.Fatal("nil snapshot")
	}

	// Advance the graph, then drop the log entries the incremental path
	// would need.
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 60; i++ {
		s, o := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		tr := kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}
		if i%4 == 3 {
			g.Retract(tr)
		} else if err := g.Assert(tr); err != nil {
			t.Fatal(err)
		}
	}
	g.TruncateLog(g.LastSeq())

	s2 := e.Snapshot()
	if s2.Seq() != g.LastSeq() {
		t.Fatalf("snapshot seq %d, watermark %d", s2.Seq(), g.LastSeq())
	}
	want := buildAdjacencySnapshot(g)
	snapshotsEqual(t, 0, s2, want)
}
