package graphengine

import (
	"iter"

	"saga/internal/kg"
)

// Derived-predicate read surface. The rules engine (internal/rules)
// maintains derived facts in its own overlay store — they are never
// written into kg.Graph — and exposes them to the query stack through
// DerivedReader. A DerivedView joins the live graph with such a reader
// into one conjGraph, so the planner, executor, cursors, subscriptions,
// and the HTTP query surface all work over derived predicates unchanged:
// AttachDerived swaps the view in as the Engine's read surface.
//
// # Enumeration order
//
// For a derived predicate, every enumeration yields the graph's own
// facts first (in their usual index order — a head predicate may also
// carry base facts), then the reader's derived facts in the reader's
// stable insertion order, skipping derived facts the base also asserts.
// A reader that keeps its lists append-ordered therefore gives the same
// deterministic stream the executor guarantees for base predicates,
// which is what makes cursors over derived predicates exact while the
// derived store is unchanged.
//
// # Locking
//
// DerivedReader methods return copies (or answer point probes) and must
// not hold reader-internal locks while calling back into the caller:
// the executor recurses into further view reads from inside an
// enumeration, so a visitor-callback surface holding an internal RLock
// could deadlock against a queued writer. Copy-out keeps the contract
// simple: no reader lock is ever held while solver code runs.
type DerivedReader interface {
	// IsDerived reports whether the reader maintains this predicate.
	// Readers must answer from an immutable set (rule heads are fixed at
	// construction; analytics predicates register before first use).
	IsDerived(kg.PredicateID) bool
	// DerivedFactCount returns the number of derived (subj, pred, *)
	// facts — a planner estimate probe.
	DerivedFactCount(kg.EntityID, kg.PredicateID) int
	// DerivedSubjectCount returns the number of derived (pred, obj)
	// subjects — a planner estimate probe.
	DerivedSubjectCount(kg.PredicateID, kg.Value) int
	// DerivedFrequency returns the predicate's derived fact count.
	DerivedFrequency(kg.PredicateID) int
	// HasDerivedFact reports membership under SPO identity (MapKey), the
	// same identity the graph's HasFact uses.
	HasDerivedFact(kg.EntityID, kg.PredicateID, kg.Value) bool
	// DerivedFacts returns a copy of the (subj, pred) derived facts in
	// stable insertion order.
	DerivedFacts(kg.EntityID, kg.PredicateID) []kg.Triple
	// DerivedSubjects returns a copy of the (pred, obj) derived subjects
	// in stable insertion order.
	DerivedSubjects(kg.PredicateID, kg.Value) []kg.EntityID
	// DerivedEntries returns a copy of every derived fact under pred, in
	// stable insertion order.
	DerivedEntries(kg.PredicateID) []kg.Triple
}

// DerivedView is the union read surface of a live graph and a
// DerivedReader. It implements conjGraph; build one with NewDerivedView
// or implicitly through Engine.AttachDerived. The view itself is
// stateless — freshness is whatever the graph and reader answer at call
// time.
type DerivedView struct {
	g *kg.Graph
	d DerivedReader
}

// NewDerivedView returns the union view of g and d.
func NewDerivedView(g *kg.Graph, d DerivedReader) *DerivedView {
	return &DerivedView{g: g, d: d}
}

// Reader returns the view's derived-fact reader.
func (v *DerivedView) Reader() DerivedReader { return v.d }

// AttachDerived installs d as the Engine's derived-fact source: every
// conjunctive solve (StreamConjunctive, PlanConjunctive, subscription
// residual solves and re-verification) runs against the union of the
// graph and d from now on. Passing nil detaches. The swap is atomic;
// in-flight solves keep the surface they started with.
//
// The plan cache is shared across the swap: plans cache no results, only
// clause orderings, and their staleness check re-probes whatever surface
// the next solve runs on, so a plan built before the attach self-corrects
// like any other stale plan.
func (e *Engine) AttachDerived(d DerivedReader) {
	if d == nil {
		e.derived.Store(nil)
		return
	}
	e.derived.Store(NewDerivedView(e.g, d))
}

// read returns the Engine's current conjunctive read surface: the bare
// graph, or the derived union view once AttachDerived installed one.
func (e *Engine) read() conjGraph {
	if v := e.derived.Load(); v != nil {
		return v
	}
	return e.g
}

// ApplyDerivedDeltas feeds derived-fact visibility changes into the
// Engine's subscription hub, so standing queries over derived predicates
// update live. The rules engine calls this after each maintenance batch
// with the facts that became visible (adds) and invisible (rets) through
// the union view — base-graph mutations must not be passed here, the hub
// consumes those from its own changefeed. A hub that is not running (no
// subscribers) ignores the call.
func (e *Engine) ApplyDerivedDeltas(adds, rets []kg.Triple) {
	if len(adds) == 0 && len(rets) == 0 {
		return
	}
	e.mu.Lock()
	h := e.hub
	e.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	for _, t := range adds {
		for s := range h.byPred[t.Predicate] {
			h.deltaAssertLocked(s, t)
		}
	}
	for _, t := range rets {
		for s := range h.byPred[t.Predicate] {
			h.deltaRetractLocked(s, t)
		}
	}
	for s := range h.subs {
		s.notePendingLocked(s.applied)
	}
}

// UnifyClause matches one clause against a concrete triple and returns
// the variable substitution θ, with the same repeated-variable Equal
// semantics as the executor's bindVar. Exported for the rules engine's
// delta evaluation, which seeds residual solves from mutations exactly
// like the subscription hub does.
func UnifyClause(c Clause, t kg.Triple) (Binding, bool) {
	return unifyClause(c, t)
}

// SubstituteClauses grounds θ's variables into the clauses, leaving the
// remaining variables free. ok is false when θ would place a non-entity
// value in a subject slot — such a conjunction has no rows. Exported for
// the rules engine's delta evaluation.
func SubstituteClauses(clauses []Clause, theta Binding) ([]Clause, bool) {
	return substituteClauses(clauses, theta)
}

// --- conjGraph ----------------------------------------------------------

// FactCount returns base plus derived counts. For a derived predicate
// whose fact is asserted both ways the sum double-counts; the executor
// only uses the count as a planner estimate and capacity hint, never as
// a truncation bound, so overlap cannot drop rows.
func (v *DerivedView) FactCount(subj kg.EntityID, pred kg.PredicateID) int {
	n := v.g.FactCount(subj, pred)
	if v.d.IsDerived(pred) {
		n += v.d.DerivedFactCount(subj, pred)
	}
	return n
}

// SubjectsWithCount returns base plus derived posting sizes (an
// estimate, like FactCount).
func (v *DerivedView) SubjectsWithCount(pred kg.PredicateID, obj kg.Value) int {
	n := v.g.SubjectsWithCount(pred, obj)
	if v.d.IsDerived(pred) {
		n += v.d.DerivedSubjectCount(pred, obj)
	}
	return n
}

// PredicateFrequency returns base plus derived triple counts (an
// estimate, like FactCount).
func (v *DerivedView) PredicateFrequency(pred kg.PredicateID) int {
	n := v.g.PredicateFrequency(pred)
	if v.d.IsDerived(pred) {
		n += v.d.DerivedFrequency(pred)
	}
	return n
}

// HasFact reports membership in the union, exactly.
func (v *DerivedView) HasFact(subj kg.EntityID, pred kg.PredicateID, obj kg.Value) bool {
	if v.g.HasFact(subj, pred, obj) {
		return true
	}
	return v.d.IsDerived(pred) && v.d.HasDerivedFact(subj, pred, obj)
}

// FactsFunc streams base facts in index order, then derived facts in
// insertion order, skipping derived facts the base also asserts.
func (v *DerivedView) FactsFunc(subj kg.EntityID, pred kg.PredicateID, fn func(kg.Triple) bool) {
	if !v.d.IsDerived(pred) {
		v.g.FactsFunc(subj, pred, fn)
		return
	}
	stopped := false
	v.g.FactsFunc(subj, pred, func(t kg.Triple) bool {
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, t := range v.d.DerivedFacts(subj, pred) {
		if v.g.HasFact(t.Subject, t.Predicate, t.Object) {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// FactsChunked streams base chunks first (with the live restart
// contract), then derived facts re-chunked; derived chunks never
// restart.
func (v *DerivedView) FactsChunked(subj kg.EntityID, pred kg.PredicateID, chunkSize int, fn func(chunk []kg.Triple, restarted bool) bool) {
	if !v.d.IsDerived(pred) {
		v.g.FactsChunked(subj, pred, chunkSize, fn)
		return
	}
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	stopped := false
	v.g.FactsChunked(subj, pred, chunkSize, func(chunk []kg.Triple, restarted bool) bool {
		if !fn(chunk, restarted) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	derived := v.d.DerivedFacts(subj, pred)
	buf := make([]kg.Triple, 0, min(len(derived), chunkSize))
	for _, t := range derived {
		if v.g.HasFact(t.Subject, t.Predicate, t.Object) {
			continue
		}
		buf = append(buf, t)
		if len(buf) == chunkSize {
			if !fn(buf, false) {
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		fn(buf, false)
	}
}

// SubjectsWithFunc streams base subjects first, then derived subjects,
// skipping derived entries the base also asserts.
func (v *DerivedView) SubjectsWithFunc(pred kg.PredicateID, obj kg.Value, fn func(kg.EntityID) bool) {
	if !v.d.IsDerived(pred) {
		v.g.SubjectsWithFunc(pred, obj, fn)
		return
	}
	stopped := false
	v.g.SubjectsWithFunc(pred, obj, func(s kg.EntityID) bool {
		if !fn(s) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, s := range v.d.DerivedSubjects(pred, obj) {
		if v.g.HasFact(s, pred, obj) {
			continue
		}
		if !fn(s) {
			return
		}
	}
}

// SubjectsWithChunked streams base chunks first (live restart contract),
// then derived subjects re-chunked; derived chunks never restart.
func (v *DerivedView) SubjectsWithChunked(pred kg.PredicateID, obj kg.Value, chunkSize int, fn func(chunk []kg.EntityID, restarted bool) bool) {
	if !v.d.IsDerived(pred) {
		v.g.SubjectsWithChunked(pred, obj, chunkSize, fn)
		return
	}
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	stopped := false
	v.g.SubjectsWithChunked(pred, obj, chunkSize, func(chunk []kg.EntityID, restarted bool) bool {
		if !fn(chunk, restarted) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	derived := v.d.DerivedSubjects(pred, obj)
	buf := make([]kg.EntityID, 0, min(len(derived), chunkSize))
	for _, s := range derived {
		if v.g.HasFact(s, pred, obj) {
			continue
		}
		buf = append(buf, s)
		if len(buf) == chunkSize {
			if !fn(buf, false) {
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		fn(buf, false)
	}
}

// PredicateEntriesFunc streams base entries, then derived entries,
// skipping derived facts the base also asserts. Order is unspecified,
// as on the live graph (the executor sorts unbound expansions).
func (v *DerivedView) PredicateEntriesFunc(pred kg.PredicateID, fn func(obj kg.Value, subj kg.EntityID) bool) {
	if !v.d.IsDerived(pred) {
		v.g.PredicateEntriesFunc(pred, fn)
		return
	}
	stopped := false
	v.g.PredicateEntriesFunc(pred, func(obj kg.Value, subj kg.EntityID) bool {
		if !fn(obj, subj) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, t := range v.d.DerivedEntries(pred) {
		if v.g.HasFact(t.Subject, t.Predicate, t.Object) {
			continue
		}
		if !fn(t.Object, t.Subject) {
			return
		}
	}
}

// --- Query surface ------------------------------------------------------

// StreamConjunctive evaluates the conjunction against the union view,
// with the same streaming contract as Engine.StreamConjunctive. Planning
// is per call (the view has no plan cache of its own); the rules engine
// solves its residual bodies through here so rule evaluation sees its
// own previously derived facts — the recursion that makes transitive
// closure converge.
func (v *DerivedView) StreamConjunctive(clauses []Clause, opts QueryOptions) iter.Seq2[Binding, error] {
	return streamConjunctive(v, clauses, opts)
}
