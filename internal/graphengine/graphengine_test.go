package graphengine

import (
	"fmt"
	"math/rand"
	"testing"

	"saga/internal/kg"
)

// fixture builds a small typed graph:
//
//	lebron -occupation-> {bballPlayer, tvActor}
//	lebron -award-> mvp; curry -award-> mvp; kobe -award-> mvp
//	lebron -height-> 203 (literal)
//	lebron -libraryID-> "L1" (rare predicate, freq 1)
type fixture struct {
	g                         *kg.Graph
	e                         *Engine
	lebron, curry, kobe       kg.EntityID
	bball, tvactor, mvp       kg.EntityID
	occ, award, height, libid kg.PredicateID
	personType, athleteType   kg.TypeID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{g: kg.NewGraph()}
	o := f.g.Ontology()
	thing, _ := o.AddType("Thing", kg.NoType)
	f.personType, _ = o.AddType("Person", thing)
	f.athleteType, _ = o.AddType("Athlete", f.personType)

	add := func(key, name string, types ...kg.TypeID) kg.EntityID {
		id, err := f.g.AddEntity(kg.Entity{Key: key, Name: name, Types: types})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	f.lebron = add("Q1", "LeBron James", f.athleteType)
	f.curry = add("Q2", "Stephen Curry", f.athleteType)
	f.kobe = add("Q3", "Kobe Bryant", f.athleteType)
	f.bball = add("Q4", "Basketball Player")
	f.tvactor = add("Q5", "Television Actor")
	f.mvp = add("Q6", "NBA MVP Award")

	pred := func(name string) kg.PredicateID {
		id, err := f.g.AddPredicate(kg.Predicate{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	f.occ = pred("occupation")
	f.award = pred("award")
	f.height = pred("height")
	f.libid = pred("libraryID")

	assert := func(s kg.EntityID, p kg.PredicateID, o kg.Value) {
		if err := f.g.Assert(kg.Triple{Subject: s, Predicate: p, Object: o, Prov: kg.Provenance{Confidence: 0.9}}); err != nil {
			t.Fatal(err)
		}
	}
	assert(f.lebron, f.occ, kg.EntityValue(f.bball))
	assert(f.lebron, f.occ, kg.EntityValue(f.tvactor))
	assert(f.lebron, f.award, kg.EntityValue(f.mvp))
	assert(f.curry, f.award, kg.EntityValue(f.mvp))
	assert(f.kobe, f.award, kg.EntityValue(f.mvp))
	assert(f.lebron, f.height, kg.IntValue(203))
	assert(f.lebron, f.libid, kg.StringValue("L1"))

	f.e = New(f.g)
	return f
}

func TestQueryBoundPatterns(t *testing.T) {
	f := newFixture(t)
	// S+P bound.
	got := f.e.Query(Pattern{Subject: S(f.lebron), Predicate: P(f.occ)})
	if len(got) != 2 {
		t.Fatalf("S+P query = %v", got)
	}
	// S+P+O bound.
	got = f.e.Query(Pattern{Subject: S(f.lebron), Predicate: P(f.occ), Object: O(kg.EntityValue(f.bball))})
	if len(got) != 1 {
		t.Fatalf("S+P+O query = %v", got)
	}
	// P+O bound: who has the MVP award?
	got = f.e.Query(Pattern{Predicate: P(f.award), Object: O(kg.EntityValue(f.mvp))})
	if len(got) != 3 {
		t.Fatalf("P+O query = %v", got)
	}
	// O bound only (entity object).
	got = f.e.Query(Pattern{Object: O(kg.EntityValue(f.mvp))})
	if len(got) != 3 {
		t.Fatalf("O query = %v", got)
	}
	// S bound only.
	got = f.e.Query(Pattern{Subject: S(f.lebron)})
	if len(got) != 5 {
		t.Fatalf("S query = %d triples, want 5", len(got))
	}
	// P bound only (scan path).
	got = f.e.Query(Pattern{Predicate: P(f.height)})
	if len(got) != 1 || got[0].Object.Num != 203 {
		t.Fatalf("P-only query = %v", got)
	}
	// Unbound full scan.
	if got := f.e.Query(Pattern{}); len(got) != 7 {
		t.Fatalf("full scan = %d triples, want 7", len(got))
	}
}

func TestViewDropLiterals(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "emb", DropLiteralFacts: true})
	if v.Len() != 5 {
		t.Fatalf("view len = %d, want 5 entity facts", v.Len())
	}
	for _, tr := range v.Triples() {
		if tr.Object.IsLiteral() {
			t.Fatalf("literal fact leaked into view: %v", tr)
		}
	}
}

func TestViewMinPredicateFreq(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "freq", MinPredicateFreq: 2})
	// occ(2), award(3) survive; height(1), libid(1) dropped.
	if v.Len() != 5 {
		t.Fatalf("view len = %d, want 5", v.Len())
	}
	for _, tr := range v.Triples() {
		if tr.Predicate == f.height || tr.Predicate == f.libid {
			t.Fatalf("rare predicate leaked: %v", tr)
		}
	}
}

func TestViewIncludeExcludePredicates(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "inc", IncludePredicates: map[kg.PredicateID]bool{f.award: true}})
	if v.Len() != 3 {
		t.Fatalf("include view len = %d", v.Len())
	}
	v2 := f.e.Materialize(ViewDef{Name: "exc", ExcludePredicates: map[kg.PredicateID]bool{f.award: true}})
	if v2.Len() != 4 {
		t.Fatalf("exclude view len = %d", v2.Len())
	}
}

func TestViewSubjectType(t *testing.T) {
	f := newFixture(t)
	// Athlete subjects only — all facts have athlete subjects in fixture.
	v := f.e.Materialize(ViewDef{Name: "ath", SubjectType: f.athleteType})
	if v.Len() != 7 {
		t.Fatalf("athlete view len = %d", v.Len())
	}
	// Person supertype matches via inheritance too.
	v2 := f.e.Materialize(ViewDef{Name: "per", SubjectType: f.personType})
	if v2.Len() != 7 {
		t.Fatalf("person view len = %d", v2.Len())
	}
}

func TestViewMinConfidence(t *testing.T) {
	f := newFixture(t)
	low := kg.Triple{Subject: f.curry, Predicate: f.occ, Object: kg.EntityValue(f.bball), Prov: kg.Provenance{Confidence: 0.1}}
	if err := f.g.Assert(low); err != nil {
		t.Fatal(err)
	}
	v := f.e.Materialize(ViewDef{Name: "conf", MinConfidence: 0.5})
	if v.Contains(low) {
		t.Fatal("low-confidence fact leaked into view")
	}
	if v.Len() != 7 {
		t.Fatalf("view len = %d, want 7", v.Len())
	}
}

func TestViewIncrementalRefresh(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "inc2", DropLiteralFacts: true})
	base := v.Len()

	newFact := kg.Triple{Subject: f.curry, Predicate: f.occ, Object: kg.EntityValue(f.bball)}
	if err := f.g.Assert(newFact); err != nil {
		t.Fatal(err)
	}
	litFact := kg.Triple{Subject: f.curry, Predicate: f.height, Object: kg.IntValue(188)}
	if err := f.g.Assert(litFact); err != nil {
		t.Fatal(err)
	}
	applied := v.Refresh()
	if applied != 1 {
		t.Fatalf("Refresh applied %d, want 1 (literal filtered)", applied)
	}
	if v.Len() != base+1 || !v.Contains(newFact) {
		t.Fatalf("view missing new fact; len=%d", v.Len())
	}

	f.g.Retract(newFact)
	if v.Refresh() != 1 {
		t.Fatal("retraction not applied")
	}
	if v.Contains(newFact) || v.Len() != base {
		t.Fatal("view still contains retracted fact")
	}
	// Refresh with no new mutations is a no-op.
	if v.Refresh() != 0 {
		t.Fatal("idle refresh applied mutations")
	}
}

func TestViewRefreshMatchesRematerialize(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "equiv", DropLiteralFacts: true})
	rng := rand.New(rand.NewSource(7))
	ents := []kg.EntityID{f.lebron, f.curry, f.kobe, f.bball, f.tvactor, f.mvp}
	for i := 0; i < 100; i++ {
		s := ents[rng.Intn(len(ents))]
		o := ents[rng.Intn(len(ents))]
		tr := kg.Triple{Subject: s, Predicate: f.award, Object: kg.EntityValue(o)}
		if rng.Intn(3) == 0 {
			f.g.Retract(tr)
		} else {
			if err := f.g.Assert(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	v.Refresh()
	fresh := New(f.g).Materialize(ViewDef{Name: "", DropLiteralFacts: true})
	if v.Len() != fresh.Len() {
		t.Fatalf("incremental view len %d != fresh view len %d", v.Len(), fresh.Len())
	}
	for _, tr := range fresh.Triples() {
		if !v.Contains(tr) {
			t.Fatalf("incremental view missing %v", tr)
		}
	}
}

func TestViewVocabulary(t *testing.T) {
	f := newFixture(t)
	v := f.e.Materialize(ViewDef{Name: "vocab", DropLiteralFacts: true})
	ents := v.EntityIDs()
	if len(ents) != 6 {
		t.Fatalf("EntityIDs = %v, want 6", ents)
	}
	for i := 1; i < len(ents); i++ {
		if ents[i] <= ents[i-1] {
			t.Fatal("EntityIDs not sorted/unique")
		}
	}
	preds := v.PredicateIDs()
	if len(preds) != 2 {
		t.Fatalf("PredicateIDs = %v, want occ+award", preds)
	}
}

func TestNeighbors(t *testing.T) {
	f := newFixture(t)
	nbrs := f.e.Neighbors(f.mvp)
	if len(nbrs) != 3 {
		t.Fatalf("Neighbors(mvp) = %v", nbrs)
	}
	nbrs = f.e.Neighbors(f.lebron)
	if len(nbrs) != 3 { // bball, tvactor, mvp
		t.Fatalf("Neighbors(lebron) = %v", nbrs)
	}
}

func TestBFS(t *testing.T) {
	f := newFixture(t)
	dist := f.e.BFS(f.lebron, 2)
	if dist[f.lebron] != 0 {
		t.Fatal("source distance != 0")
	}
	if dist[f.mvp] != 1 {
		t.Fatalf("dist(mvp) = %d", dist[f.mvp])
	}
	if dist[f.curry] != 2 { // via mvp
		t.Fatalf("dist(curry) = %d", dist[f.curry])
	}
	dist1 := f.e.BFS(f.lebron, 1)
	if _, ok := dist1[f.curry]; ok {
		t.Fatal("depth-1 BFS reached 2-hop node")
	}
}

func TestPPRRelated(t *testing.T) {
	f := newFixture(t)
	top := f.e.TopRelatedByPPR(f.lebron, 10)
	if len(top) == 0 {
		t.Fatal("no PPR results")
	}
	// curry and kobe (share the MVP award) must appear.
	found := map[kg.EntityID]bool{}
	for _, se := range top {
		found[se.ID] = true
		if se.ID == f.lebron {
			t.Fatal("source leaked into related list")
		}
	}
	if !found[f.curry] || !found[f.kobe] {
		t.Fatalf("PPR missed co-award athletes: %v", top)
	}
	// Scores are sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("PPR scores not sorted")
		}
	}
}

func TestPPRMassConservation(t *testing.T) {
	f := newFixture(t)
	ppr := f.e.PersonalizedPageRank(f.lebron, 0.15, 25)
	var total float64
	for _, m := range ppr {
		if m < 0 {
			t.Fatal("negative PPR mass")
		}
		total += m
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("PPR mass = %v, want ~1", total)
	}
}

func TestRandomWalksAndCoOccurrence(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(1))
	walks := f.e.RandomWalks(f.lebron, 50, 4, rng)
	if len(walks) != 50 {
		t.Fatalf("walks = %d", len(walks))
	}
	for _, w := range walks {
		if w[0] != f.lebron {
			t.Fatal("walk does not start at source")
		}
		if len(w) > 5 {
			t.Fatalf("walk too long: %v", w)
		}
	}
	co := CoOccurrence(walks)
	if co[f.mvp] == 0 {
		t.Fatal("1-hop neighbor never co-occurred in 50 walks")
	}
	if co[f.lebron] != 0 {
		t.Fatal("source counted in its own co-occurrence")
	}
}

func TestRandomWalkIsolatedNode(t *testing.T) {
	g := kg.NewGraph()
	id, err := g.AddEntity(kg.Entity{Key: "lonely", Name: "Lonely"})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	walks := e.RandomWalks(id, 3, 5, rand.New(rand.NewSource(2)))
	for _, w := range walks {
		if len(w) != 1 {
			t.Fatalf("isolated node walk = %v", w)
		}
	}
	if got := e.TopRelatedByPPR(id, 5); len(got) != 0 {
		t.Fatalf("isolated node PPR related = %v", got)
	}
}

func TestMaterializeCachesByName(t *testing.T) {
	f := newFixture(t)
	v1 := f.e.Materialize(ViewDef{Name: "same"})
	v2 := f.e.Materialize(ViewDef{Name: "same"})
	if v1 != v2 {
		t.Fatal("named views not cached")
	}
	anon1 := f.e.Materialize(ViewDef{})
	anon2 := f.e.Materialize(ViewDef{})
	if anon1 == anon2 {
		t.Fatal("anonymous views must be distinct")
	}
}

func TestLargeGraphBFSDepths(t *testing.T) {
	// Chain graph: e0 - e1 - ... - e49.
	g := kg.NewGraph()
	p, _ := g.AddPredicate(kg.Predicate{Name: "next"})
	ids := make([]kg.EntityID, 50)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("c%d", i), Name: "n"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := g.Assert(kg.Triple{Subject: ids[i], Predicate: p, Object: kg.EntityValue(ids[i+1])}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(g)
	dist := e.BFS(ids[0], 49)
	for i, id := range ids {
		if dist[id] != i {
			t.Fatalf("dist(e%d) = %d, want %d", i, dist[id], i)
		}
	}
}
