package graphengine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"saga/internal/kg"
)

// streamFixture builds a graph where one team has many members, all of
// whom also won the award — a query with a wide answer set, the shape a
// limit must terminate early.
func streamFixture(t testing.TB, nMembers int) (g *kg.Graph, clauses []Clause) {
	t.Helper()
	g = kg.NewGraphWithShards(8)
	add := func(key string) kg.EntityID {
		id, err := g.AddEntity(kg.Entity{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	award, _ := g.AddPredicate(kg.Predicate{Name: "award"})
	team := add("team")
	prize := add("prize")
	batch := make([]kg.Triple, 0, nMembers*2)
	for i := 0; i < nMembers; i++ {
		p := add(fmt.Sprintf("p%d", i))
		batch = append(batch,
			kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(team)},
			kg.Triple{Subject: p, Predicate: award, Object: kg.EntityValue(prize)},
		)
	}
	if _, err := g.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}
	clauses = []Clause{
		{Subject: V("p"), Predicate: member, Object: CE(team)},
		{Subject: V("p"), Predicate: award, Object: CE(prize)},
	}
	return g, clauses
}

// collectStream drains a stream into bindings, failing the test on any
// yielded error.
func collectStream(t *testing.T, seq func(func(Binding, error) bool)) []Binding {
	t.Helper()
	var out []Binding
	for b, err := range seq {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, b)
	}
	return out
}

// bindingToken returns the collision-free identity token of a binding —
// the encoded cursor of its key tuple.
func bindingToken(b Binding) string { return EncodeCursor(BindingKey(b)) }

// Property: on random graphs and random two-clause queries, the stream-
// collected result set is exactly QueryConjunctive's (same dedup, same
// count), the stream itself never yields a duplicate, a limited stream is
// a prefix of the unlimited one, and cursor pagination reproduces the
// unlimited stream with no dup or missing row.
func TestStreamConjunctiveMatchesQueryConjunctive(t *testing.T) {
	f := func(edges []uint16, q1, q2 uint8) bool {
		g := kg.NewGraph()
		const nEnts = 6
		ents := make([]kg.EntityID, nEnts)
		for i := range ents {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				return false
			}
			ents[i] = id
		}
		preds := make([]kg.PredicateID, 2)
		for i := range preds {
			id, err := g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return false
			}
			preds[i] = id
		}
		for _, e := range edges {
			s := ents[int(e)%nEnts]
			p := preds[int(e>>4)%2]
			o := ents[int(e>>8)%nEnts]
			if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}); err != nil {
				return false
			}
		}
		eng := New(g)
		clauses := []Clause{
			{Subject: V("x"), Predicate: preds[int(q1)%2], Object: V("y")},
			{Subject: V("y"), Predicate: preds[int(q2)%2], Object: V("z")},
		}

		var streamed []Binding
		seen := make(map[string]bool)
		for b, err := range eng.StreamConjunctive(clauses, QueryOptions{}) {
			if err != nil {
				return false
			}
			tok := bindingToken(b)
			if seen[tok] {
				return false // in-stream duplicate
			}
			seen[tok] = true
			streamed = append(streamed, b)
		}

		sorted, err := eng.QueryConjunctive(clauses)
		if err != nil {
			return false
		}
		if len(sorted) != len(streamed) {
			return false
		}
		for _, b := range sorted {
			if !seen[bindingToken(b)] {
				return false
			}
		}

		// Limit push-down yields a prefix of the unlimited stream.
		for _, limit := range []int{1, 2, len(streamed)} {
			if limit > len(streamed) || limit == 0 {
				continue
			}
			page := 0
			for b, err := range eng.StreamConjunctive(clauses, QueryOptions{Limit: limit}) {
				if err != nil {
					return false
				}
				if bindingToken(b) != bindingToken(streamed[page]) {
					return false
				}
				page++
			}
			if page != limit {
				return false
			}
		}

		// Cursor pagination walks the exact unlimited sequence.
		var walked []Binding
		var cursor []kg.ValueKey
		for {
			n := 0
			var last Binding
			for b, err := range eng.StreamConjunctive(clauses, QueryOptions{Limit: 2, Cursor: cursor}) {
				if err != nil {
					return false
				}
				walked = append(walked, b)
				last = b
				n++
			}
			if n < 2 {
				break
			}
			cursor = BindingKey(last)
		}
		if len(walked) != len(streamed) {
			return false
		}
		for i := range walked {
			if bindingToken(walked[i]) != bindingToken(streamed[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// countingGraph wraps a graph to count how often the solver actually
// probes it: posting-list entries enumerated and membership checks made.
type countingGraph struct {
	*kg.Graph
	hasFact  int
	postings int
}

func (c *countingGraph) HasFact(s kg.EntityID, p kg.PredicateID, o kg.Value) bool {
	c.hasFact++
	return c.Graph.HasFact(s, p, o)
}

func (c *countingGraph) SubjectsWithFunc(p kg.PredicateID, o kg.Value, fn func(kg.EntityID) bool) {
	c.Graph.SubjectsWithFunc(p, o, func(id kg.EntityID) bool {
		c.postings++
		return fn(id)
	})
}

func (c *countingGraph) SubjectsWithChunked(p kg.PredicateID, o kg.Value, chunkSize int, fn func([]kg.EntityID, bool) bool) {
	c.Graph.SubjectsWithChunked(p, o, chunkSize, func(chunk []kg.EntityID, restarted bool) bool {
		c.postings += len(chunk)
		return fn(chunk, restarted)
	})
}

// A limited solve must stop probing the graph once the page is full: with
// every team member holding the award, each yielded row costs one
// membership check, so limit rows cost limit checks — not one per member
// as the full solve pays.
func TestStreamConjunctiveLimitStopsProbing(t *testing.T) {
	const nMembers = 512
	g, clauses := streamFixture(t, nMembers)

	full := &countingGraph{Graph: g}
	rows := 0
	for _, err := range streamConjunctive(full, clauses, QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != nMembers {
		t.Fatalf("full solve = %d rows, want %d", rows, nMembers)
	}
	if full.hasFact < nMembers {
		t.Fatalf("full solve made %d membership probes, expected >= %d — fixture no longer exercises the probe path", full.hasFact, nMembers)
	}

	const limit = 5
	limited := &countingGraph{Graph: g}
	rows = 0
	for _, err := range streamConjunctive(limited, clauses, QueryOptions{Limit: limit}) {
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != limit {
		t.Fatalf("limited solve = %d rows, want %d", rows, limit)
	}
	if limited.hasFact > limit {
		t.Fatalf("limited solve made %d membership probes after limit %d — limit is not pushed into the solver", limited.hasFact, limit)
	}
}

// Cursor pagination at the engine level: pages are disjoint, in stream
// order, and their union is exactly the full answer set.
func TestStreamConjunctiveCursorPagination(t *testing.T) {
	const nMembers = 23
	g, clauses := streamFixture(t, nMembers)
	e := New(g)

	want := collectStream(t, e.StreamConjunctive(clauses, QueryOptions{}))
	if len(want) != nMembers {
		t.Fatalf("full stream = %d rows, want %d", len(want), nMembers)
	}

	var pages [][]Binding
	var cursor []kg.ValueKey
	for {
		page := collectStream(t, e.StreamConjunctive(clauses, QueryOptions{Limit: 4, Cursor: cursor}))
		if len(page) == 0 {
			break
		}
		pages = append(pages, page)
		cursor = BindingKey(page[len(page)-1])
		if len(page) < 4 {
			break
		}
	}
	var all []Binding
	for _, p := range pages {
		all = append(all, p...)
	}
	if len(all) != len(want) {
		t.Fatalf("paged union = %d rows, full stream = %d", len(all), len(want))
	}
	seen := make(map[string]bool, len(all))
	for i := range all {
		tok := bindingToken(all[i])
		if seen[tok] {
			t.Fatalf("row %d duplicated across pages", i)
		}
		seen[tok] = true
		if tok != bindingToken(want[i]) {
			t.Fatalf("paged row %d diverges from stream order", i)
		}
	}

	// A cursor naming a row that does not exist yields an empty remainder,
	// not an error and not a restart.
	ghost := []kg.ValueKey{kg.StringValue("no-such-binding").MapKey()}
	if got := collectStream(t, e.StreamConjunctive(clauses, QueryOptions{Cursor: ghost})); len(got) != 0 {
		t.Fatalf("unknown cursor yielded %d rows, want 0", len(got))
	}

	// A cursor of the wrong arity is an error.
	bad := []kg.ValueKey{kg.IntValue(1).MapKey(), kg.IntValue(2).MapKey()}
	var gotErr error
	for _, err := range e.StreamConjunctive(clauses, QueryOptions{Cursor: bad}) {
		if err != nil {
			gotErr = err
		}
	}
	if gotErr == nil {
		t.Fatal("arity-mismatched cursor accepted")
	}
}

// Cursor tokens must round-trip adversarial ValueKeys exactly.
func TestCursorRoundTrip(t *testing.T) {
	tuples := [][]kg.ValueKey{
		{},
		{kg.StringValue("").MapKey()},
		{kg.StringValue("a;y=s:b").MapKey(), kg.StringValue("").MapKey()},
		{kg.EntityValue(42).MapKey(), kg.IntValue(-7).MapKey(), kg.BoolValue(true).MapKey()},
		{kg.FloatValue(math.Float64frombits(0x7ff8000000000001)).MapKey(), kg.FloatValue(math.Float64frombits(0x7ff8000000000002)).MapKey()},
		{kg.TimeValue(time.Unix(0, 123456789).UTC()).MapKey()},
	}
	for i, keys := range tuples {
		tok := EncodeCursor(keys)
		got, err := DecodeCursor(tok)
		if err != nil {
			t.Fatalf("tuple %d: decode: %v", i, err)
		}
		if len(got) != len(keys) {
			t.Fatalf("tuple %d: round-trip length %d != %d", i, len(got), len(keys))
		}
		for j := range got {
			if got[j] != keys[j] {
				t.Fatalf("tuple %d key %d: %+v != %+v", i, j, got[j], keys[j])
			}
		}
	}
	// Distinct adversarial tuples must encode distinctly (the dedup and
	// cursor comparison property).
	a := EncodeCursor([]kg.ValueKey{kg.StringValue("a;y=s:b").MapKey(), kg.StringValue("").MapKey()})
	b := EncodeCursor([]kg.ValueKey{kg.StringValue("a").MapKey(), kg.StringValue("b;y=s:").MapKey()})
	if a == b {
		t.Fatal("adversarial separator literals encode to the same cursor")
	}
	if _, err := DecodeCursor("!!!not-base64!!!"); err == nil {
		t.Fatal("garbage cursor accepted")
	}
	if _, err := DecodeCursor(EncodeCursor(nil) + "AAAA"); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Context cancellation aborts the solve mid-join: after cancel, the
// stream yields no further rows and surfaces the context error as its
// final element.
func TestStreamConjunctiveContextCancel(t *testing.T) {
	g, clauses := streamFixture(t, 64)
	e := New(g)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	var gotErr error
	for _, err := range e.StreamConjunctive(clauses, QueryOptions{Context: ctx}) {
		if err != nil {
			gotErr = err
			continue
		}
		rows++
		cancel()
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("cancelled stream error = %v, want context.Canceled", gotErr)
	}
	if rows != 1 {
		t.Fatalf("cancelled stream yielded %d rows after cancel on the first, want 1", rows)
	}

	// An already-expired timeout aborts before the first row.
	rows = 0
	gotErr = nil
	for _, err := range e.StreamConjunctive(clauses, QueryOptions{Timeout: time.Nanosecond}) {
		if err != nil {
			gotErr = err
			continue
		}
		rows++
	}
	if !errors.Is(gotErr, context.DeadlineExceeded) {
		t.Fatalf("timed-out stream error = %v, want context.DeadlineExceeded", gotErr)
	}
	if rows != 0 {
		t.Fatalf("timed-out stream yielded %d rows, want 0", rows)
	}
}

// Stream/StreamPattern: limit push-down, early break, and provenance
// routing on the predicate-bound paths.
func TestStreamPattern(t *testing.T) {
	g := kg.NewGraph()
	s, _ := g.AddEntity(kg.Entity{Key: "s"})
	o, _ := g.AddEntity(kg.Entity{Key: "o"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	for i := 0; i < 10; i++ {
		tr := kg.Triple{Subject: s, Predicate: p, Object: kg.IntValue(int64(i)), Prov: kg.Provenance{Source: "src"}}
		if err := g.Assert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o), Prov: kg.Provenance{Source: "src"}}); err != nil {
		t.Fatal(err)
	}
	e := New(g)

	n := 0
	for t2, err := range e.StreamPattern(Pattern{Predicate: P(p)}, QueryOptions{Limit: 3}) {
		if err != nil {
			t.Fatal(err)
		}
		_ = t2
		n++
	}
	if n != 3 {
		t.Fatalf("limited pattern stream = %d rows, want 3", n)
	}

	// Early break stops the scan and releases the lock: a write afterwards
	// must not deadlock.
	for range e.Stream(Pattern{Predicate: P(p)}) {
		break
	}
	if err := g.Assert(kg.Triple{Subject: o, Predicate: p, Object: kg.IntValue(99)}); err != nil {
		t.Fatal(err)
	}

	// Default predicate-only path reconstructs objects without provenance;
	// the Provenance option routes through stored triples.
	for tr, err := range e.StreamPattern(Pattern{Predicate: P(p)}, QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		if tr.Prov.Source != "" {
			t.Fatalf("index-path triple carries provenance %q, expected none", tr.Prov.Source)
		}
	}
	withProv := 0
	for tr, err := range e.StreamPattern(Pattern{Predicate: P(p)}, QueryOptions{Provenance: true}) {
		if err != nil {
			t.Fatal(err)
		}
		if tr.Subject == s && tr.Prov.Source != "src" {
			t.Fatalf("provenance-path triple lost its provenance: %+v", tr)
		}
		withProv++
	}
	if withProv != 12 {
		t.Fatalf("provenance-path stream = %d rows, want 12", withProv)
	}

	// P+O: both routes yield the same match set, provenance only on the
	// stored-triple route.
	obj := kg.EntityValue(o)
	idx := collectPattern(t, e, Pattern{Predicate: P(p), Object: O(obj)}, QueryOptions{})
	prov := collectPattern(t, e, Pattern{Predicate: P(p), Object: O(obj)}, QueryOptions{Provenance: true})
	if len(idx) != 1 || len(prov) != 1 {
		t.Fatalf("P+O match counts diverge: index=%d provenance=%d, want 1/1", len(idx), len(prov))
	}
	if idx[0].Prov.Source != "" || prov[0].Prov.Source != "src" {
		t.Fatalf("P+O provenance routing wrong: index=%q provenance=%q", idx[0].Prov.Source, prov[0].Prov.Source)
	}

	// Cursors are conjunctive-only.
	var cursorErr error
	for _, err := range e.StreamPattern(Pattern{Predicate: P(p)}, QueryOptions{Cursor: []kg.ValueKey{{}}}) {
		cursorErr = err
	}
	if cursorErr == nil {
		t.Fatal("pattern stream accepted a cursor")
	}
}

func collectPattern(t *testing.T, e *Engine, p Pattern, opts QueryOptions) []kg.Triple {
	t.Helper()
	var out []kg.Triple
	for tr, err := range e.StreamPattern(p, opts) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

// pprSparse must reuse its two frontier maps across iterations (the
// pprDense swap mirrored onto maps): allocations must not scale with the
// iteration count.
func TestPPRSparseMapReuse(t *testing.T) {
	g := kg.NewGraph()
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	// A small ring so the PPR frontier saturates within the short run:
	// any allocation difference between the two run lengths below is then
	// per-iteration cost, not frontier-growth cost.
	ids := make([]kg.EntityID, 8)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := range ids {
		if err := g.Assert(kg.Triple{Subject: ids[i], Predicate: p, Object: kg.EntityValue(ids[(i+1)%len(ids)])}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(g)
	snap := e.Snapshot()
	src := ids[0]

	short := testing.AllocsPerRun(20, func() { pprSparse(snap, src, 0.15, 8) })
	long := testing.AllocsPerRun(20, func() { pprSparse(snap, src, 0.15, 40) })
	// The fixed cost (two maps + growth) is identical; the old
	// allocate-per-iteration behavior would add ~36 map headers here.
	if long > short+4 {
		t.Fatalf("pprSparse allocations scale with iters: %0.1f at 4 iters vs %0.1f at 40", short, long)
	}
}

// dupGraph wraps a graph so every posting-list enumeration yields each
// subject twice — a synthetic duplicate source that lets the dedup tests
// observe the seen-set directly (real indexes are set-semantic and never
// repeat a row, so the streaming dedup is a guard the fixture must force).
type dupGraph struct {
	*kg.Graph
}

func (d *dupGraph) SubjectsWithFunc(p kg.PredicateID, o kg.Value, fn func(kg.EntityID) bool) {
	d.Graph.SubjectsWithFunc(p, o, func(id kg.EntityID) bool {
		if !fn(id) {
			return false
		}
		return fn(id)
	})
}

func (d *dupGraph) SubjectsWithChunked(p kg.PredicateID, o kg.Value, chunkSize int, fn func([]kg.EntityID, bool) bool) {
	d.Graph.SubjectsWithChunked(p, o, chunkSize, func(chunk []kg.EntityID, restarted bool) bool {
		doubled := make([]kg.EntityID, 0, 2*len(chunk))
		for _, id := range chunk {
			doubled = append(doubled, id, id)
		}
		return fn(doubled, restarted)
	})
}

// NoDedup disables the streaming duplicate collapse: over a duplicate-
// producing expansion the default stream yields each distinct binding
// once, the NoDedup stream yields one row per derivation.
func TestStreamNoDedup(t *testing.T) {
	const nMembers = 16
	g, clauses := streamFixture(t, nMembers)
	dg := &dupGraph{Graph: g}

	deduped := 0
	for _, err := range streamConjunctive(dg, clauses, QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		deduped++
	}
	if deduped != nMembers {
		t.Fatalf("deduped stream = %d rows, want %d", deduped, nMembers)
	}

	raw := 0
	for _, err := range streamConjunctive(dg, clauses, QueryOptions{NoDedup: true}) {
		if err != nil {
			t.Fatal(err)
		}
		raw++
	}
	if raw != 2*nMembers {
		t.Fatalf("NoDedup stream = %d rows, want %d (one per derivation)", raw, 2*nMembers)
	}

	// A limit still terminates the raw stream.
	limited := 0
	for _, err := range streamConjunctive(dg, clauses, QueryOptions{NoDedup: true, Limit: 3}) {
		if err != nil {
			t.Fatal(err)
		}
		limited++
	}
	if limited != 3 {
		t.Fatalf("NoDedup limited stream = %d rows, want 3", limited)
	}
}

// The planner's selectivity counters must read through the write path's
// buffered pom deltas: facts asserted moments ago (still sitting in
// shard-local delta buffers, nothing has forced a flush) must be visible
// to estimates and expansions of the very next query.
func TestPlannerCountersSeeBufferedWrites(t *testing.T) {
	g := kg.NewGraphWithShards(8)
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	team, err := g.AddEntity(kg.Entity{Key: "team"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20 // far below the flush threshold: every delta stays buffered
	for i := 0; i < n; i++ {
		p, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Assert(kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(team)}); err != nil {
			t.Fatal(err)
		}
	}
	clause := Clause{Subject: V("p"), Predicate: member, Object: CE(team)}
	if got := estimateOn(g, clause, Binding{}); got != n+1 {
		t.Fatalf("estimate over buffered writes = %d, want %d", got, n+1)
	}
	rows := collectStream(t, New(g).StreamConjunctive([]Clause{clause}, QueryOptions{}))
	if len(rows) != n {
		t.Fatalf("stream over buffered writes = %d rows, want %d", len(rows), n)
	}
}
