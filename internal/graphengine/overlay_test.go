package graphengine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"saga/internal/kg"
)

// The overlay's contract is byte-identity: a conjunctive solve over
// NewOverlay(base, suffix) must produce exactly the rows — in exactly
// the stream order — that the same solve produced over a live graph
// holding the first asOf mutations. These tests pin that against
// from-scratch replays across randomized assert/retract/re-assert
// histories and several base/asOf cuts.

const (
	ovEnts  = 8
	ovPreds = 3
)

// newOverlayWorld registers a fixed dictionary so every replica assigns
// identical IDs; only asserts and retracts follow (those are what the
// mutation log carries).
func newOverlayWorld(t testing.TB) (*kg.Graph, []kg.EntityID, []kg.PredicateID) {
	t.Helper()
	g := kg.NewGraph()
	ents := make([]kg.EntityID, ovEnts)
	for i := range ents {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = id
	}
	preds := make([]kg.PredicateID, ovPreds)
	for i := range preds {
		id, err := g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = id
	}
	return g, ents, preds
}

// overlayObject draws from a deliberately small value domain so the
// history hits retract-then-re-assert of the same triple identity and
// literal objects exercise the posting-key paths.
func overlayObject(rng *rand.Rand, ents []kg.EntityID) kg.Value {
	switch rng.Intn(5) {
	case 0:
		return kg.StringValue(fmt.Sprintf("s%d", rng.Intn(4)))
	case 1:
		return kg.IntValue(int64(rng.Intn(4)))
	default:
		return kg.EntityValue(ents[rng.Intn(len(ents))])
	}
}

// ovMutator drives asserts, retracts, and re-asserts of previously
// retracted triples (the history shape the overlay's removed-then-
// appended enumeration order must reproduce). One step is one attempted
// mutation.
type ovMutator struct {
	t    testing.TB
	g    *kg.Graph
	rng  *rand.Rand
	live []kg.Triple
	dead []kg.Triple
}

func (m *ovMutator) step() {
	switch {
	case len(m.dead) > 0 && m.rng.Intn(5) == 0:
		j := m.rng.Intn(len(m.dead))
		tr := m.dead[j]
		added, err := m.g.AssertNew(tr)
		if err != nil {
			m.t.Fatalf("re-assert of retracted triple: %v", err)
		}
		m.dead[j] = m.dead[len(m.dead)-1]
		m.dead = m.dead[:len(m.dead)-1]
		if added { // !added means the random-assert branch already revived it
			m.live = append(m.live, tr)
		}
	case len(m.live) > 3 && m.rng.Intn(4) == 0:
		j := m.rng.Intn(len(m.live))
		tr := m.live[j]
		if !m.g.Retract(tr) {
			m.t.Fatalf("retract of live triple failed: %v", tr)
		}
		m.live[j] = m.live[len(m.live)-1]
		m.live = m.live[:len(m.live)-1]
		m.dead = append(m.dead, tr)
	default:
		ents, preds := entsAndPreds(m.g)
		tr := kg.Triple{
			Subject:   ents[m.rng.Intn(len(ents))],
			Predicate: preds[m.rng.Intn(len(preds))],
			Object:    overlayObject(m.rng, ents),
		}
		added, err := m.g.AssertNew(tr)
		if err != nil {
			m.t.Fatalf("assert: %v", err)
		}
		if added {
			m.live = append(m.live, tr)
		}
	}
}

func mutateOverlayWorld(t testing.TB, g *kg.Graph, rng *rand.Rand, steps int) {
	t.Helper()
	m := &ovMutator{t: t, g: g, rng: rng}
	for i := 0; i < steps; i++ {
		m.step()
	}
}

func entsAndPreds(g *kg.Graph) ([]kg.EntityID, []kg.PredicateID) {
	ents := make([]kg.EntityID, ovEnts)
	for i := range ents {
		ents[i] = kg.EntityID(i + 1)
	}
	preds := make([]kg.PredicateID, ovPreds)
	for i := range preds {
		preds[i] = kg.PredicateID(i + 1)
	}
	return ents, preds
}

// replayMuts rebuilds a fresh graph from a mutation prefix.
func replayMuts(t testing.TB, muts []kg.Mutation) *kg.Graph {
	t.Helper()
	g, _, _ := newOverlayWorld(t)
	for _, mu := range muts {
		switch mu.Op {
		case kg.OpAssert:
			if added, err := g.AssertNew(mu.T); err != nil || !added {
				t.Fatalf("replay assert LSN %d: added=%v err=%v", mu.Seq, added, err)
			}
		case kg.OpRetract:
			if !g.Retract(mu.T) {
				t.Fatalf("replay retract LSN %d failed", mu.Seq)
			}
		}
	}
	return g
}

func canonBinding(b Binding) string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%v;", n, b[n].MapKey())
	}
	return sb.String()
}

// collectStream drains a binding stream into canonical row strings,
// preserving order.
func collectCanonRows(t testing.TB, label string, s func(yield func(Binding, error) bool)) []string {
	t.Helper()
	var rows []string
	for b, err := range s {
		if err != nil {
			t.Fatalf("%s: stream error: %v", label, err)
		}
		rows = append(rows, canonBinding(b))
	}
	return rows
}

func overlayQueries(ents []kg.EntityID, preds []kg.PredicateID) [][]Clause {
	return [][]Clause{
		{{Subject: V("x"), Predicate: preds[0], Object: V("y")}},
		{{Subject: V("x"), Predicate: preds[1], Object: V("y")}},
		{{Subject: V("x"), Predicate: preds[2], Object: V("y")}},
		{
			{Subject: V("x"), Predicate: preds[0], Object: V("y")},
			{Subject: V("y"), Predicate: preds[1], Object: V("z")},
		},
		{
			{Subject: V("x"), Predicate: preds[0], Object: CE(ents[2])},
			{Subject: V("x"), Predicate: preds[1], Object: V("y")},
		},
		{
			{Subject: V("x"), Predicate: preds[0], Object: V("y")},
			{Subject: V("x"), Predicate: preds[2], Object: V("y")},
		},
		{{Subject: V("x"), Predicate: preds[1], Object: C(kg.StringValue("s1"))}},
		{{Subject: CE(ents[0]), Predicate: preds[0], Object: V("y")}},
	}
}

// TestOverlayMatchesLiveReplay: for random histories and several
// (base, asOf) cuts, every query solved through the overlay streams the
// same rows in the same order as the identical solve over a live graph
// replayed to asOf — unlimited, limited, and via the sorted collect.
func TestOverlayMatchesLiveReplay(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src, ents, preds := newOverlayWorld(t)
			mutateOverlayWorld(t, src, rand.New(rand.NewSource(seed)), 400)
			muts, complete := src.Feed(0).Pull()
			if !complete || len(muts) == 0 {
				t.Fatalf("source history unavailable: %d muts, complete=%v", len(muts), complete)
			}
			m := len(muts)
			cuts := [][2]int{{0, m / 2}, {m / 3, m / 3}, {m / 3, 2 * m / 3}, {m / 2, m}, {0, m}}
			for _, cut := range cuts {
				base := replayMuts(t, muts[:cut[0]])
				ov := NewOverlay(base, muts[cut[0]:cut[1]])
				liveEng := New(replayMuts(t, muts[:cut[1]]))
				for qi, q := range overlayQueries(ents, preds) {
					label := fmt.Sprintf("cut=%v q=%d", cut, qi)
					want := collectCanonRows(t, label, liveEng.StreamConjunctive(q, QueryOptions{}))
					got := collectCanonRows(t, label, ov.StreamConjunctive(q, QueryOptions{}))
					if !equalRows(want, got) {
						t.Fatalf("%s: overlay stream diverged\nlive:    %v\noverlay: %v", label, want, got)
					}
					wantLim := collectCanonRows(t, label, liveEng.StreamConjunctive(q, QueryOptions{Limit: 5}))
					gotLim := collectCanonRows(t, label, ov.StreamConjunctive(q, QueryOptions{Limit: 5}))
					if !equalRows(wantLim, gotLim) {
						t.Fatalf("%s: limited overlay stream diverged\nlive:    %v\noverlay: %v", label, wantLim, gotLim)
					}
					wantAll, err := liveEng.QueryConjunctive(q)
					if err != nil {
						t.Fatalf("%s: live query: %v", label, err)
					}
					gotAll, err := ov.QueryConjunctive(q)
					if err != nil {
						t.Fatalf("%s: overlay query: %v", label, err)
					}
					if len(wantAll) != len(gotAll) {
						t.Fatalf("%s: %d live rows vs %d overlay rows", label, len(wantAll), len(gotAll))
					}
					for i := range wantAll {
						if canonBinding(wantAll[i]) != canonBinding(gotAll[i]) {
							t.Fatalf("%s: sorted row %d differs: %v vs %v", label, i, wantAll[i], gotAll[i])
						}
					}
				}
			}
		})
	}
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOverlayConjGraphContract compares every solver-facing accessor of
// the overlay against the live replayed graph directly — counts,
// membership, and enumeration order — across the whole (subject,
// predicate) and (predicate, object) probe space.
func TestOverlayConjGraphContract(t *testing.T) {
	src, ents, preds := newOverlayWorld(t)
	mutateOverlayWorld(t, src, rand.New(rand.NewSource(42)), 500)
	muts, complete := src.Feed(0).Pull()
	if !complete {
		t.Fatal("source history unavailable")
	}
	m := len(muts)
	base := replayMuts(t, muts[:m/3])
	ov := NewOverlay(base, muts[m/3:])
	live := replayMuts(t, muts)

	objects := make([]kg.Value, 0, len(ents)+8)
	for _, e := range ents {
		objects = append(objects, kg.EntityValue(e))
	}
	for i := 0; i < 4; i++ {
		objects = append(objects, kg.StringValue(fmt.Sprintf("s%d", i)), kg.IntValue(int64(i)))
	}

	for _, p := range preds {
		if got, want := ov.PredicateFrequency(p), live.PredicateFrequency(p); got != want {
			t.Fatalf("PredicateFrequency(%d): %d, want %d", p, got, want)
		}
		for _, s := range ents {
			if got, want := ov.FactCount(s, p), live.FactCount(s, p); got != want {
				t.Fatalf("FactCount(%d,%d): %d, want %d", s, p, got, want)
			}
			var gotFacts, wantFacts []string
			ov.FactsFunc(s, p, func(tr kg.Triple) bool {
				gotFacts = append(gotFacts, fmt.Sprintf("%v", tr.IdentityKey()))
				return true
			})
			live.FactsFunc(s, p, func(tr kg.Triple) bool {
				wantFacts = append(wantFacts, fmt.Sprintf("%v", tr.IdentityKey()))
				return true
			})
			if !equalRows(wantFacts, gotFacts) {
				t.Fatalf("FactsFunc(%d,%d) order: %v, want %v", s, p, gotFacts, wantFacts)
			}
		}
		for _, o := range objects {
			if got, want := ov.SubjectsWithCount(p, o), live.SubjectsWithCount(p, o); got != want {
				t.Fatalf("SubjectsWithCount(%d,%v): %d, want %d", p, o, got, want)
			}
			var gotSubs, wantSubs []string
			ov.SubjectsWithFunc(p, o, func(id kg.EntityID) bool {
				gotSubs = append(gotSubs, fmt.Sprint(id))
				return true
			})
			live.SubjectsWithFunc(p, o, func(id kg.EntityID) bool {
				wantSubs = append(wantSubs, fmt.Sprint(id))
				return true
			})
			if !equalRows(wantSubs, gotSubs) {
				t.Fatalf("SubjectsWithFunc(%d,%v) order: %v, want %v", p, o, gotSubs, wantSubs)
			}
			var gotChunks, wantChunks []string
			ov.SubjectsWithChunked(p, o, 3, func(chunk []kg.EntityID, restarted bool) bool {
				for _, id := range chunk {
					gotChunks = append(gotChunks, fmt.Sprint(id))
				}
				return true
			})
			live.SubjectsWithChunked(p, o, 3, func(chunk []kg.EntityID, restarted bool) bool {
				for _, id := range chunk {
					wantChunks = append(wantChunks, fmt.Sprint(id))
				}
				return true
			})
			if !equalRows(wantChunks, gotChunks) {
				t.Fatalf("SubjectsWithChunked(%d,%v) order: %v, want %v", p, o, gotChunks, wantChunks)
			}
			for _, s := range ents {
				if got, want := ov.HasFact(s, p, o), live.HasFact(s, p, o); got != want {
					t.Fatalf("HasFact(%d,%d,%v): %v, want %v", s, p, o, got, want)
				}
			}
		}
		gotEntries := make(map[string]int)
		wantEntries := make(map[string]int)
		ov.PredicateEntriesFunc(p, func(obj kg.Value, subj kg.EntityID) bool {
			gotEntries[fmt.Sprintf("%v|%d", obj.MapKey(), subj)]++
			return true
		})
		live.PredicateEntriesFunc(p, func(obj kg.Value, subj kg.EntityID) bool {
			wantEntries[fmt.Sprintf("%v|%d", obj.MapKey(), subj)]++
			return true
		})
		if len(gotEntries) != len(wantEntries) {
			t.Fatalf("PredicateEntriesFunc(%d): %d entries, want %d", p, len(gotEntries), len(wantEntries))
		}
		for k, n := range wantEntries {
			if gotEntries[k] != n {
				t.Fatalf("PredicateEntriesFunc(%d): entry %s count %d, want %d", p, k, gotEntries[k], n)
			}
		}
	}

	// Early-stop contract: a false return halts enumeration.
	stops := 0
	ov.FactsFunc(ents[0], preds[0], func(kg.Triple) bool { stops++; return false })
	if stops > 1 {
		t.Fatalf("FactsFunc ignored early stop: %d calls", stops)
	}
}
