package graphengine

import (
	"math"
	"slices"
	"sort"
	"testing"

	"saga/internal/kg"
)

// naiveConjunctive is a brute-force reference evaluator: nested loops
// over the full triple list per clause, Equal-join semantics, and dedup
// on the bindings' ValueKey tuples (never on rendered strings). The
// planner must return exactly this set.
func naiveConjunctive(t *testing.T, g *kg.Graph, clauses []Clause) [][]kg.ValueKey {
	t.Helper()
	var vars []string
	for _, c := range clauses {
		for _, term := range [2]Term{c.Subject, c.Object} {
			if term.Var != "" && !slices.Contains(vars, term.Var) {
				vars = append(vars, term.Var)
			}
		}
	}
	sort.Strings(vars)
	all := g.AllTriples()
	bound := Binding{}
	var rows [][]kg.ValueKey
	var rec func(i int)
	rec = func(i int) {
		if i == len(clauses) {
			row := make([]kg.ValueKey, len(vars))
			for j, name := range vars {
				row[j] = bound[name].MapKey()
			}
			rows = append(rows, row)
			return
		}
		c := clauses[i]
		for _, tr := range all {
			if tr.Predicate != c.Predicate {
				continue
			}
			matches := func(term Term, val kg.Value) bool {
				if term.Var == "" {
					return term.Const.Equal(val)
				}
				if v, has := bound[term.Var]; has {
					return v.Equal(val)
				}
				return true
			}
			if !matches(c.Subject, kg.EntityValue(tr.Subject)) || !matches(c.Object, tr.Object) {
				continue
			}
			var added []string
			bind := func(term Term, val kg.Value) {
				if term.Var != "" {
					if _, has := bound[term.Var]; !has {
						bound[term.Var] = val
						added = append(added, term.Var)
					}
				}
			}
			bind(c.Subject, kg.EntityValue(tr.Subject))
			bind(c.Object, tr.Object)
			rec(i + 1)
			for _, v := range added {
				delete(bound, v)
			}
		}
	}
	rec(0)
	sort.Slice(rows, func(a, b int) bool { return compareKeyRows(rows[a], rows[b]) < 0 })
	dedup := rows[:0]
	for i, r := range rows {
		if i > 0 && compareKeyRows(rows[i-1], r) == 0 {
			continue
		}
		dedup = append(dedup, r)
	}
	return dedup
}

// checkAgainstNaive pins QueryConjunctive's binding set (as key tuples)
// against the naive reference.
func checkAgainstNaive(t *testing.T, g *kg.Graph, clauses []Clause, wantCount int) {
	t.Helper()
	e := New(g)
	got, err := e.QueryConjunctive(clauses)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveConjunctive(t, g, clauses)
	if wantCount >= 0 && len(want) != wantCount {
		t.Fatalf("naive reference found %d bindings, expected %d — test fixture broken", len(want), wantCount)
	}
	if len(got) != len(want) {
		t.Fatalf("QueryConjunctive = %d bindings, naive reference = %d\ngot: %v", len(got), len(want), got)
	}
	var vars []string
	for _, c := range clauses {
		for _, term := range [2]Term{c.Subject, c.Object} {
			if term.Var != "" && !slices.Contains(vars, term.Var) {
				vars = append(vars, term.Var)
			}
		}
	}
	sort.Strings(vars)
	for i, b := range got {
		row := make([]kg.ValueKey, len(vars))
		for j, name := range vars {
			row[j] = b[name].MapKey()
		}
		if compareKeyRows(row, want[i]) != 0 {
			t.Fatalf("binding %d = %v, naive reference disagrees", i, b)
		}
	}

	// The streaming surface must agree with the naive reference too: same
	// dedup (the adversarial literals must not collapse distinct rows, nor
	// duplicate any), same count, order-independent. Identity compares on
	// the collision-free encoded key tuples.
	naiveSet := make(map[string]bool, len(want))
	for _, row := range want {
		naiveSet[EncodeCursor(row)] = true
	}
	streamed := 0
	streamSeen := make(map[string]bool, len(want))
	for b, err := range e.StreamConjunctive(clauses, QueryOptions{}) {
		if err != nil {
			t.Fatalf("StreamConjunctive: %v", err)
		}
		tok := EncodeCursor(BindingKey(b))
		if streamSeen[tok] {
			t.Fatalf("StreamConjunctive yielded a duplicate binding: %v", b)
		}
		streamSeen[tok] = true
		if !naiveSet[tok] {
			t.Fatalf("StreamConjunctive yielded a binding the naive reference lacks: %v", b)
		}
		streamed++
	}
	if streamed != len(want) {
		t.Fatalf("StreamConjunctive = %d bindings, naive reference = %d", streamed, len(want))
	}
}

// Distinct bindings whose string renders collide: with the old
// concatenated "var=key;" encoding, (x="a;y=s:b", y="") and
// (x="a", y="b;y=s:") both rendered as "x=s:a;y=s:b;y=s:;" and the dedup
// map collapsed them — the cross product of 2×2 object literals must
// yield 4 bindings, not 3.
func TestConjunctiveAdversarialSeparatorLiterals(t *testing.T) {
	g := kg.NewGraph()
	s, _ := g.AddEntity(kg.Entity{Key: "s"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	q, _ := g.AddPredicate(kg.Predicate{Name: "q"})
	for _, v := range []string{"a;y=s:b", "a"} {
		if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.StringValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []string{"", "b;y=s:"} {
		if err := g.Assert(kg.Triple{Subject: s, Predicate: q, Object: kg.StringValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstNaive(t, g, []Clause{
		{Subject: CE(s), Predicate: p, Object: V("x")},
		{Subject: CE(s), Predicate: q, Object: V("y")},
	}, 4)
}

// Literals containing '=' and empty strings in a joined two-subject
// query: every distinct combination must survive dedup.
func TestConjunctiveAdversarialEqualsAndEmpty(t *testing.T) {
	g := kg.NewGraph()
	a, _ := g.AddEntity(kg.Entity{Key: "a"})
	b, _ := g.AddEntity(kg.Entity{Key: "b"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	q, _ := g.AddPredicate(kg.Predicate{Name: "q"})
	for _, tr := range []kg.Triple{
		{Subject: a, Predicate: p, Object: kg.StringValue("x=1")},
		{Subject: a, Predicate: p, Object: kg.StringValue("x")},
		{Subject: b, Predicate: p, Object: kg.StringValue("")},
		{Subject: a, Predicate: q, Object: kg.StringValue("=1;")},
		{Subject: b, Predicate: q, Object: kg.StringValue("")},
	} {
		if err := g.Assert(tr); err != nil {
			t.Fatal(err)
		}
	}
	// (?s, p, ?x) ∧ (?s, q, ?y): a contributes 2×1, b contributes 1×1.
	checkAgainstNaive(t, g, []Clause{
		{Subject: V("s"), Predicate: p, Object: V("x")},
		{Subject: V("s"), Predicate: q, Object: V("y")},
	}, 3)
}

// Two NaN facts with different payload bits are distinct SPO identities;
// the old render collapsed them because strconv prints every NaN as
// "NaN". Both must appear as bindings.
func TestConjunctiveAdversarialNaNPayloads(t *testing.T) {
	g := kg.NewGraph()
	s, _ := g.AddEntity(kg.Entity{Key: "s"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	for _, bits := range []uint64{0x7ff8000000000001, 0x7ff8000000000002} {
		if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.FloatValue(math.Float64frombits(bits))}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(g)
	res, err := e.QueryConjunctive([]Clause{{Subject: CE(s), Predicate: p, Object: V("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("NaN-payload bindings = %d, want 2 (distinct identities)", len(res))
	}
	// The naive reference can't pin this query: Equal-join semantics make
	// constant-subject matching insensitive to NaN payloads only in the
	// object position, which is exactly what both evaluators implement —
	// so compare them anyway.
	checkAgainstNaive(t, g, []Clause{{Subject: CE(s), Predicate: p, Object: V("x")}}, 2)
}

// A variable bound to a NaN literal never Equal-joins into a second
// clause (NaN != NaN), even when both facts carry identical bit
// patterns: the planner's fully-bound shortcut must preserve the join's
// Equal semantics rather than the index's identity semantics.
func TestConjunctiveNaNVarJoinPrunes(t *testing.T) {
	g := kg.NewGraph()
	s1, _ := g.AddEntity(kg.Entity{Key: "s1"})
	s2, _ := g.AddEntity(kg.Entity{Key: "s2"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	q, _ := g.AddPredicate(kg.Predicate{Name: "q"})
	nan := kg.FloatValue(math.Float64frombits(0x7ff8000000000001))
	for _, tr := range []kg.Triple{
		{Subject: s1, Predicate: p, Object: nan},
		{Subject: s2, Predicate: q, Object: nan},
	} {
		if err := g.Assert(tr); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstNaive(t, g, []Clause{
		{Subject: CE(s1), Predicate: p, Object: V("x")},
		{Subject: CE(s2), Predicate: q, Object: V("x")},
	}, 0)
}

// estimate must never allocate: cost probes are counter lookups on the
// predicate-major index, and the planner re-estimates every remaining
// clause at every join depth.
func TestEstimateZeroAllocs(t *testing.T) {
	f := newFixture(t)
	bound := Binding{"who": kg.EntityValue(f.lebron)}
	clauses := []Clause{
		{Subject: V("x"), Predicate: f.award, Object: CE(f.mvp)},                        // object bound
		{Subject: CE(f.lebron), Predicate: f.occ, Object: V("o")},                       // subject bound
		{Subject: V("a"), Predicate: f.award, Object: V("b")},                           // unbound
		{Subject: CE(f.lebron), Predicate: f.height, Object: C(kg.IntValue(203))},       // fully bound
		{Subject: V("who"), Predicate: f.libid, Object: C(kg.StringValue("L1"))},        // var subject, bound
		{Subject: V("free"), Predicate: f.height, Object: C(kg.FloatValue(math.NaN()))}, // literal object probe
	}
	var sink int
	for i, c := range clauses {
		c := c
		if allocs := testing.AllocsPerRun(200, func() { sink += f.e.estimate(c, bound) }); allocs != 0 {
			t.Errorf("clause %d: estimate allocates %.1f per op, want 0", i, allocs)
		}
	}
	_ = sink
}

// BenchmarkConjunctiveEstimate reports the planner's cost-probe price
// directly (the acceptance surface for "estimate() shows 0 allocs/op").
func BenchmarkConjunctiveEstimate(b *testing.B) {
	g := kg.NewGraph()
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	team, _ := g.AddEntity(kg.Entity{Key: "team"})
	for i := 0; i < 200; i++ {
		p, err := g.AddEntity(kg.Entity{Key: "p" + string(rune('a'+i%26)) + string(rune('0'+i/26))})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Assert(kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(team)}); err != nil {
			b.Fatal(err)
		}
	}
	e := New(g)
	c := Clause{Subject: V("p"), Predicate: member, Object: CE(team)}
	bound := Binding{}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += e.estimate(c, bound)
	}
	_ = sink
}
