package graphengine

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"iter"
	"slices"
	"sort"
	"time"

	"saga/internal/kg"
)

// Streaming query surface. The slice-returning Query/QueryConjunctive
// APIs solve the whole answer set before the caller sees the first row —
// fine for training views, hostile for serving, where a caller wanting
// ten rows should pay for ten rows. This layer redesigns the query
// surface around Go 1.24 iterators: Stream and StreamConjunctive yield
// results as the planner produces them, so a limit terminates the solve
// early, context cancellation aborts a join mid-flight, and an opaque
// cursor resumes enumeration where the previous page stopped (the
// "enumeration with bounded delay" serving contract — evaluation cost
// tracks output consumed, not output possible). The slice APIs remain as
// collect-and-sort shims over this layer.

// QueryOptions configure one streaming query. The zero value streams the
// full answer set with no deadline. One options struct serves every
// planner entry point (StreamConjunctive, StreamPattern, and the
// platform/HTTP layers above them).
type QueryOptions struct {
	// Limit stops the solve after this many rows have been yielded
	// (<= 0 = unlimited). Unlike truncating a materialized result, the
	// limit is pushed into the solver: enumeration stops probing as soon
	// as the last row is out.
	Limit int

	// Cursor resumes a conjunctive enumeration after the row with this
	// key tuple (the binding's values in sorted-variable order — see
	// BindingKey). Rows up to and including the cursor row are re-derived
	// and skipped, so a page costs O(rows before it) — resumption relies
	// on the stream's deterministic order and is exact while the graph is
	// unchanged; mutations in between may shift page boundaries. A cursor
	// naming a row that no longer exists yields an empty remainder.
	Cursor []kg.ValueKey

	// Provenance selects stored-triple enumeration for pattern queries.
	// By default the predicate-bound pattern paths (predicate-only and
	// predicate+object) read the predicate-major index, whose postings
	// reconstruct objects from identity keys — those triples carry no
	// Prov (the planner expansion has always been provenance-free there).
	// Setting Provenance routes these two paths through the full stored-
	// triple scan instead: every yielded triple carries its provenance,
	// at full-scan cost. Match semantics are unchanged (SPO identity).
	// Conjunctive bindings map variables to values, which carry no
	// provenance either way, so the flag is a no-op for
	// StreamConjunctive.
	Provenance bool

	// NoDedup disables StreamConjunctive's duplicate collapse. The
	// streaming dedup holds a seen-set entry per distinct row enumerated,
	// so an unlimited stream over a huge answer set carries O(answers)
	// memory; an aggregation that tolerates (or wants) multiplicity can
	// set NoDedup and run in O(1) solver memory instead. With it set, a
	// binding derivable along several join paths is yielded once per
	// derivation, and cursor resumption (still supported) resumes after
	// the first occurrence of the cursor row. The HTTP query surface is
	// unaffected: it never sets NoDedup and always solves with a Limit,
	// which bounds the seen-set at limit+1 entries. Pattern streams have
	// no dedup to disable (an index never yields the same triple twice);
	// the flag is a no-op for StreamPattern.
	NoDedup bool

	// Timeout bounds the solve's wall-clock time (0 = none). It is
	// implemented as a context deadline layered over Context.
	Timeout time.Duration

	// Context aborts the solve when cancelled (nil = never). The stream
	// yields the context error as its final element.
	Context context.Context

	// Parallelism runs a conjunctive solve with this many workers
	// partitioning the first plan step's candidates (<= 1 = sequential).
	// The output stream is byte-identical to the sequential one — same
	// row order, dedup set, and cursors — for every worker count; only
	// wall-clock changes. Workers are cancelled as soon as the limit
	// fills, the consumer breaks, or Context is cancelled. The flag is a
	// no-op for StreamPattern.
	Parallelism int
}

// conjGraph is the read surface the conjunctive solver touches. It is an
// interface so tests can interpose a counting wrapper and pin how much of
// the graph a limited solve actually probes; *kg.Graph implements it.
type conjGraph interface {
	FactCount(kg.EntityID, kg.PredicateID) int
	SubjectsWithCount(kg.PredicateID, kg.Value) int
	PredicateFrequency(kg.PredicateID) int
	HasFact(kg.EntityID, kg.PredicateID, kg.Value) bool
	FactsFunc(kg.EntityID, kg.PredicateID, func(kg.Triple) bool)
	FactsChunked(kg.EntityID, kg.PredicateID, int, func([]kg.Triple, bool) bool)
	SubjectsWithFunc(kg.PredicateID, kg.Value, func(kg.EntityID) bool)
	SubjectsWithChunked(kg.PredicateID, kg.Value, int, func([]kg.EntityID, bool) bool)
	PredicateEntriesFunc(kg.PredicateID, func(kg.Value, kg.EntityID) bool)
}

// StreamConjunctive evaluates the conjunction and yields satisfying
// bindings as the nested-loop join produces them. Duplicates are
// collapsed on the fly (a seen-set of the bindings' ValueKey tuples in
// sorted-variable order, never rendered strings), so each distinct
// binding is yielded exactly once; the seen-set grows with the distinct
// rows enumerated, which a Limit bounds.
//
// # Order
//
// The stream order is the plan's depth-first order and it is
// deterministic for a fixed graph state: the planner fixes a clause
// order once from counter estimates (ties keep the earlier clause — see
// buildPlan), and the candidates of each expansion enumerate in index
// (assertion) order — except unbound-clause expansions, which are
// map-backed and therefore sorted by (subject, object key) before
// enumeration. The same plan and graph always stream the same sequence,
// which is what Cursor resumption relies on; the Engine's plan cache
// returns the same plan for an unchanged shape, so consecutive pages
// replay identically. The order is NOT the sorted order of
// QueryConjunctive; that shim sorts after collecting.
//
// Candidate expansion never holds graph locks across a yield — bound-
// object clauses stream postingChunkSize-entry slabs per lock
// acquisition, other paths buffer one node's candidates — so the
// consumer may freely read the graph or block, and the delay between
// consecutive yields is bounded by one node's fan-out, not the result
// size.
//
// Errors (clause validation, cursor shape, context cancellation) are
// yielded as the final (nil, err) element; rows always carry a nil error.
func (e *Engine) StreamConjunctive(clauses []Clause, opts QueryOptions) iter.Seq2[Binding, error] {
	g := e.read()
	return streamPlanned(g, clauses, opts, func() *Plan {
		return e.plans.plan(g, clauses, shapeKey(clauses))
	})
}

// streamConjunctive is StreamConjunctive over the solver's graph
// interface (tests interpose counting wrappers here). It plans per call,
// with no cache.
func streamConjunctive(g conjGraph, clauses []Clause, opts QueryOptions) iter.Seq2[Binding, error] {
	return streamPlanned(g, clauses, opts, func() *Plan {
		return buildPlan(g, clauses, "")
	})
}

// validateClauses checks the structural invariants every entry point
// (streaming, explain) enforces before planning.
func validateClauses(clauses []Clause) error {
	for i, c := range clauses {
		if c.Subject.Var == "" && !c.Subject.Const.IsEntity() {
			return fmt.Errorf("graphengine: clause %d: constant subject must be an entity", i)
		}
		if c.Predicate == kg.NoPredicate {
			return fmt.Errorf("graphengine: clause %d: predicate required", i)
		}
	}
	return nil
}

// PlanConjunctive validates the query and returns its plan, through the
// Engine's plan cache — the explain surface. The returned Plan is
// immutable and safe to hold.
func (e *Engine) PlanConjunctive(clauses []Clause) (*Plan, error) {
	if err := validateClauses(clauses); err != nil {
		return nil, err
	}
	g := e.read()
	return e.plans.plan(g, clauses, shapeKey(clauses)), nil
}

// PlanCacheStats snapshots the Engine's plan-cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	return e.plans.stats()
}

// streamPlanned is the shared entry body: validate, plan (the planFn
// decides caching), build an executor, and run it sequentially or in
// parallel. planFn runs inside the iterator so each `range` over the
// returned sequence replans against current counters.
func streamPlanned(g conjGraph, clauses []Clause, opts QueryOptions, planFn func() *Plan) iter.Seq2[Binding, error] {
	return func(yield func(Binding, error) bool) {
		if err := validateClauses(clauses); err != nil {
			yield(nil, err)
			return
		}
		p := planFn()
		if len(opts.Cursor) > 0 && len(opts.Cursor) != len(p.vars) {
			yield(nil, fmt.Errorf("graphengine: cursor has %d values, query has %d variables", len(opts.Cursor), len(p.vars)))
			return
		}
		ctx := opts.Context
		if opts.Timeout > 0 {
			base := ctx
			if base == nil {
				base = context.Background()
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(base, opts.Timeout)
			defer cancel()
		}
		ex := &executor{
			g:       g,
			plan:    p,
			clauses: clauses,
			bound:   make(Binding, len(p.vars)),
			bufs:    make([][]kg.Triple, len(p.steps)),
			keys:    make([]kg.ValueKey, len(p.vars)),
			dedup:   !opts.NoDedup,
			chunked: !opts.NoDedup,
			limit:   opts.Limit,
			ctx:     ctx,
			yield:   yield,
		}
		if ex.dedup {
			ex.seen = make(map[string]struct{})
		}
		if len(opts.Cursor) > 0 {
			ex.cursor = string(appendKeyTuple(nil, opts.Cursor))
			ex.skipping = true
		}
		if opts.Parallelism > 1 && parallelizable(p) {
			runParallel(ex, opts.Parallelism)
		} else {
			ex.exec(0)
		}
		if ex.err != nil {
			yield(nil, ex.err)
		}
	}
}

// queryVars returns the query's variable names, sorted — the canonical
// order of every binding's key tuple (dedup, result sort, cursors).
func queryVars(clauses []Clause) []string {
	var vars []string
	for _, c := range clauses {
		for _, t := range [2]Term{c.Subject, c.Object} {
			if t.Var != "" && !slices.Contains(vars, t.Var) {
				vars = append(vars, t.Var)
			}
		}
	}
	sort.Strings(vars)
	return vars
}

// Stream yields the triples matching the pattern, choosing the cheapest
// index for the bound positions — the iterator twin of Query. Unlike
// StreamConjunctive, the yield runs under the graph's read locks (the
// same contract as the kg *Func/*Seq visitors): the loop body must not
// mutate the graph or call back into it; breaking out stops the scan and
// releases the lock. Use StreamPattern for limits, provenance routing,
// and cancellation; use Query for a detached copy.
func (e *Engine) Stream(p Pattern) iter.Seq[kg.Triple] {
	return func(yield func(kg.Triple) bool) {
		for t, err := range e.StreamPattern(p, QueryOptions{}) {
			// The zero options cannot produce an error (no cursor, no
			// context); guard anyway so a future error path cannot yield
			// a zero triple silently.
			if err != nil {
				return
			}
			if !yield(t) {
				return
			}
		}
	}
}

// StreamPattern is Stream with options: Limit stops the index scan after
// that many matches, Context/Timeout abort it between matches, and
// Provenance selects stored-triple enumeration for the predicate-bound
// paths (see QueryOptions.Provenance). Cursors are a conjunctive-query
// feature; a pattern query with a cursor yields an error. Rows yield
// under the graph's read locks, like Stream; error elements yield after
// the locks are released.
func (e *Engine) StreamPattern(p Pattern, opts QueryOptions) iter.Seq2[kg.Triple, error] {
	return func(yield func(kg.Triple, error) bool) {
		if len(opts.Cursor) > 0 {
			yield(kg.Triple{}, fmt.Errorf("graphengine: cursors are not supported for pattern queries"))
			return
		}
		ctx := opts.Context
		if opts.Timeout > 0 {
			base := ctx
			if base == nil {
				base = context.Background()
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(base, opts.Timeout)
			defer cancel()
		}
		g := e.g
		n := 0
		var ctxErr error
		// emit forwards one match; it returns false to stop the scan
		// (consumer break, limit, cancellation).
		emit := func(t kg.Triple) bool {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return false
				}
			}
			if !yield(t, nil) {
				return false
			}
			n++
			return opts.Limit <= 0 || n < opts.Limit
		}
		switch {
		case p.Subject != nil && p.Predicate != nil:
			g.FactsFunc(*p.Subject, *p.Predicate, func(t kg.Triple) bool {
				if p.Object != nil && !t.Object.Equal(*p.Object) {
					return true
				}
				return emit(t)
			})
		case p.Subject != nil:
			g.OutgoingFunc(*p.Subject, func(t kg.Triple) bool {
				if p.Object != nil && !t.Object.Equal(*p.Object) {
					return true
				}
				return emit(t)
			})
		case p.Predicate != nil && p.Object != nil && !opts.Provenance:
			obj := *p.Object
			g.SubjectsWithFunc(*p.Predicate, obj, func(s kg.EntityID) bool {
				return emit(kg.Triple{Subject: s, Predicate: *p.Predicate, Object: obj})
			})
		case p.Predicate != nil && p.Object != nil:
			// Provenance route: stored triples at full-scan cost, with the
			// same SPO-identity match the index path applies.
			key := p.Object.MapKey()
			g.Triples(func(t kg.Triple) bool {
				if t.Predicate != *p.Predicate || t.Object.MapKey() != key {
					return true
				}
				return emit(t)
			})
		case p.Object != nil && p.Object.IsEntity():
			// The P+O cases above have already captured patterns with a
			// bound predicate, so only the bare incoming-edge scan remains.
			g.IncomingFunc(p.Object.Entity, emit)
		case p.Predicate != nil && !opts.Provenance:
			g.PredicateEntriesFunc(*p.Predicate, func(obj kg.Value, subj kg.EntityID) bool {
				return emit(kg.Triple{Subject: subj, Predicate: *p.Predicate, Object: obj})
			})
		case p.Predicate != nil:
			g.Triples(func(t kg.Triple) bool {
				if t.Predicate != *p.Predicate {
					return true
				}
				return emit(t)
			})
		default:
			// Nothing bound, or only a literal object: full scan with the
			// residual object filter.
			g.Triples(func(t kg.Triple) bool {
				if p.Object != nil && !t.Object.Equal(*p.Object) {
					return true
				}
				return emit(t)
			})
		}
		if ctxErr != nil {
			yield(kg.Triple{}, ctxErr)
		}
	}
}

// --- Cursor tokens ------------------------------------------------------

// BindingKey returns the binding's identity tuple: the values' ValueKeys
// in sorted-variable order — the same tuple streaming dedup, result
// ordering, and cursors are defined over. Pass it to EncodeCursor to
// build the resume token for the page ending at this binding.
func BindingKey(b Binding) []kg.ValueKey {
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	keys := make([]kg.ValueKey, len(names))
	for i, name := range names {
		keys[i] = b[name].MapKey()
	}
	return keys
}

// EncodeCursor serializes a binding key tuple into an opaque URL-safe
// token. The encoding is the collision-free binary key-tuple form (fixed-
// width kind/payload, length-prefixed strings), base64url without
// padding; adversarial literals (separators, NaN payloads, empty strings)
// round-trip exactly.
func EncodeCursor(keys []kg.ValueKey) string {
	return base64.RawURLEncoding.EncodeToString(appendKeyTuple(nil, keys))
}

// DecodeCursor parses a token produced by EncodeCursor.
func DecodeCursor(token string) ([]kg.ValueKey, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return nil, fmt.Errorf("graphengine: bad cursor encoding: %w", err)
	}
	count, off := binary.Uvarint(raw)
	if off <= 0 || count > maxCursorKeys {
		return nil, fmt.Errorf("graphengine: bad cursor header")
	}
	keys := make([]kg.ValueKey, 0, count)
	rest := raw[off:]
	for i := uint64(0); i < count; i++ {
		if len(rest) < 1+8 {
			return nil, fmt.Errorf("graphengine: truncated cursor")
		}
		k := kg.ValueKey{Kind: kg.ValueKind(rest[0])}
		k.Num = int64(binary.BigEndian.Uint64(rest[1:9]))
		rest = rest[9:]
		strLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < strLen {
			return nil, fmt.Errorf("graphengine: truncated cursor string")
		}
		k.Str = string(rest[n : n+int(strLen)])
		rest = rest[n+int(strLen):]
		keys = append(keys, k)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("graphengine: trailing bytes in cursor")
	}
	return keys, nil
}

// maxCursorKeys bounds the declared tuple size of a decoded cursor; no
// real query has anywhere near this many variables, and the bound stops a
// hostile token from pre-allocating an arbitrary slice.
const maxCursorKeys = 4096

// appendKeyTuple appends the collision-free binary encoding of a key
// tuple: a uvarint count, then per key a kind byte, the 8-byte big-endian
// numeric payload, and the length-prefixed string payload. Fixed-width
// fields keep each key's encoding prefix-free, so distinct tuples can
// never encode to the same bytes (the property the streaming dedup set
// and cursor comparison rely on; rendered-string encodings lost it to
// separator collisions).
func appendKeyTuple(b []byte, keys []kg.ValueKey) []byte {
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = append(b, byte(k.Kind))
		b = binary.BigEndian.AppendUint64(b, uint64(k.Num))
		b = binary.AppendUvarint(b, uint64(len(k.Str)))
		b = append(b, k.Str...)
	}
	return b
}
