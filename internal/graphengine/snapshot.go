package graphengine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"saga/internal/kg"
)

// AdjacencySnapshot is an immutable CSR (compressed sparse row) encoding
// of the undirected entity-to-entity graph: for each entity ID the sorted,
// deduplicated, self-loop-free set of entities adjacent via entity-valued
// facts in either direction. Traversals (Neighbors, BFS, PPR, random
// walks) read it lock-free as plain slice indexing instead of re-deriving
// adjacency from the triple indexes under the graph lock on every call.
//
// # Invalidation contract
//
// A snapshot is captured at a mutation-log watermark (Seq): it reflects
// exactly the first Seq mutations of the source graph and nothing later.
// Engine.Snapshot compares the stored watermark against kg.Graph.LastSeq
// and lazily rebuilds on mismatch; between mutations, every traversal
// shares one immutable snapshot, published via an atomic pointer. Readers
// may therefore assume a snapshot is internally consistent but at most as
// fresh as the last mutation observed before Snapshot() returned —
// concurrent writers invalidate the *next* acquisition, never mutate an
// acquired snapshot. Entities registered after capture simply have no
// adjacency row (AddEntity does not bump the watermark; an edge reaching
// a new entity requires an Assert, which does).
type AdjacencySnapshot struct {
	seq uint64
	// offsets has len(numRows+1); the neighbors of entity id are
	// nbrs[offsets[id]:offsets[id+1]] for id < numRows.
	offsets []int32
	nbrs    []kg.EntityID
}

// Seq returns the mutation-log watermark the snapshot was captured at.
func (s *AdjacencySnapshot) Seq() uint64 { return s.seq }

// NumEdges returns the number of directed adjacency entries (each
// undirected edge counts twice).
func (s *AdjacencySnapshot) NumEdges() int { return len(s.nbrs) }

// Neighbors returns the sorted distinct entities adjacent to id. The
// returned slice aliases the snapshot's backing array and must be treated
// as read-only.
func (s *AdjacencySnapshot) Neighbors(id kg.EntityID) []kg.EntityID {
	if int(id) >= len(s.offsets)-1 {
		return nil
	}
	return s.nbrs[s.offsets[id]:s.offsets[id+1]]
}

// Degree returns the number of distinct neighbors of id.
func (s *AdjacencySnapshot) Degree(id kg.EntityID) int {
	if int(id) >= len(s.offsets)-1 {
		return 0
	}
	return int(s.offsets[id+1] - s.offsets[id])
}

// RandomWalks generates n random walks of the given length starting at
// source, using rng for reproducibility. Walk steps are plain CSR slice
// lookups; no locks are taken and no per-step allocation happens.
func (s *AdjacencySnapshot) RandomWalks(source kg.EntityID, n, length int, rng *rand.Rand) [][]kg.EntityID {
	walks := make([][]kg.EntityID, 0, n)
	for i := 0; i < n; i++ {
		walk := make([]kg.EntityID, 0, length+1)
		walk = append(walk, source)
		cur := source
		for step := 0; step < length; step++ {
			nbrs := s.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))]
			walk = append(walk, cur)
		}
		walks = append(walks, walk)
	}
	return walks
}

// snapshotCache is the engine-side holder: one immutable snapshot behind
// an atomic pointer, a mutex serializing rebuilds so concurrent readers
// of a stale snapshot trigger exactly one rebuild.
type snapshotCache struct {
	cur     atomic.Pointer[AdjacencySnapshot]
	rebuild sync.Mutex
}

// Snapshot returns a CSR adjacency snapshot no older than the graph's
// mutation watermark at call time. The fast path is one atomic load plus
// one watermark read; the slow path (first call, or after a mutation)
// rebuilds under a mutex and publishes the result for all readers.
func (e *Engine) Snapshot() *AdjacencySnapshot {
	want := e.g.LastSeq()
	if s := e.snap.cur.Load(); s != nil && s.seq == want {
		return s
	}
	e.snap.rebuild.Lock()
	defer e.snap.rebuild.Unlock()
	// Re-check under the rebuild lock: another goroutine may have just
	// built a fresh-enough snapshot.
	if s := e.snap.cur.Load(); s != nil && s.seq >= want {
		return s
	}
	s := buildAdjacencySnapshot(e.g)
	e.snap.cur.Store(s)
	return s
}

// buildAdjacencySnapshot scans the graph's entity-valued triples once
// under the read lock (collecting directed pairs), then builds the CSR
// arrays outside the lock: counting sort into rows, per-row sort, dedup,
// self-loop removal, and offset compaction.
func buildAdjacencySnapshot(g *kg.Graph) *AdjacencySnapshot {
	numRows := g.NumEntities() + 1 // rows indexed by EntityID; index 0 unused
	pairs := make([]kg.EntityID, 0, 1024)
	seq := g.TriplesSnapshot(func(t kg.Triple) bool {
		if t.Object.IsEntity() {
			pairs = append(pairs, t.Subject, t.Object.Entity)
		}
		return true
	})
	// An edge endpoint can exceed NumEntities() only if entities were
	// registered between the count and the scan; widen the row space to
	// whatever the scan actually saw.
	for _, id := range pairs {
		if int(id) >= numRows {
			numRows = int(id) + 1
		}
	}

	counts := make([]int32, numRows+1)
	for i := 0; i < len(pairs); i += 2 {
		s, o := pairs[i], pairs[i+1]
		if s == o {
			continue // self-loops never appear in neighbor sets
		}
		counts[s]++
		counts[o]++
	}
	offsets := make([]int32, numRows+1)
	var total int32
	for id := 0; id < numRows; id++ {
		offsets[id] = total
		total += counts[id]
	}
	offsets[numRows] = total

	nbrs := make([]kg.EntityID, total)
	fill := make([]int32, numRows)
	for i := 0; i < len(pairs); i += 2 {
		s, o := pairs[i], pairs[i+1]
		if s == o {
			continue
		}
		nbrs[offsets[s]+fill[s]] = o
		fill[s]++
		nbrs[offsets[o]+fill[o]] = s
		fill[o]++
	}

	// Sort each row and compact duplicates (parallel edges via different
	// predicates, or symmetric fact pairs) in place, then re-pack.
	packed := nbrs[:0]
	newOffsets := make([]int32, numRows+1)
	for id := 0; id < numRows; id++ {
		row := nbrs[offsets[id] : offsets[id]+fill[id]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOffsets[id] = int32(len(packed))
		var prev kg.EntityID
		for i, n := range row {
			if i > 0 && n == prev {
				continue
			}
			packed = append(packed, n)
			prev = n
		}
	}
	newOffsets[numRows] = int32(len(packed))
	return &AdjacencySnapshot{seq: seq, offsets: newOffsets, nbrs: packed}
}
