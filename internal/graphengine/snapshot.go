package graphengine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"saga/internal/kg"
)

// AdjacencySnapshot is an immutable CSR (compressed sparse row) encoding
// of the undirected entity-to-entity graph: for each entity ID the sorted,
// deduplicated, self-loop-free set of entities adjacent via entity-valued
// facts in either direction. Traversals (Neighbors, BFS, PPR, random
// walks) read it lock-free as plain slice indexing instead of re-deriving
// adjacency from the triple indexes under the graph lock on every call.
//
// # Invalidation contract
//
// A snapshot is captured at a mutation-log watermark (Seq): it reflects
// exactly the first Seq mutations of the source graph and nothing later.
// Engine.Snapshot compares the stored watermark against kg.Graph.LastSeq
// and lazily advances on mismatch — incrementally from the mutation
// delta when it is small, from scratch otherwise; between mutations,
// every traversal shares one immutable snapshot, published via an atomic
// pointer. Readers may therefore assume a snapshot is internally
// consistent but at most as fresh as the last mutation observed before
// Snapshot() returned — concurrent writers invalidate the *next*
// acquisition, never mutate an acquired snapshot. Entities registered
// after capture simply have no adjacency row (AddEntity does not bump
// the watermark; an edge reaching a new entity requires an Assert,
// which does).
type AdjacencySnapshot struct {
	seq uint64
	// offsets has len(numRows+1); the neighbors of entity id are
	// nbrs[offsets[id]:offsets[id+1]] for id < numRows.
	offsets []int32
	nbrs    []kg.EntityID
	// mult records the undirected pairs connected by MORE than one
	// entity-valued triple (count ≥ 2); pairs absent from the map that
	// appear in the rows have exactly one. It is what lets a mutation
	// delta be applied to the rows without consulting the graph: a
	// retract of one of several parallel (u, *, v) facts must leave the
	// neighbor entry in place, and this map knows how many remain.
	// Snapshots that share unchanged rows also share this map; it is
	// cloned copy-on-write when a delta touches it.
	mult map[edgePair]int32
}

// edgePair is an undirected entity pair, normalized so A < B (self-loops
// never form pairs).
type edgePair struct {
	A, B kg.EntityID
}

func pairOf(u, v kg.EntityID) edgePair {
	if u < v {
		return edgePair{A: u, B: v}
	}
	return edgePair{A: v, B: u}
}

// Seq returns the mutation-log watermark the snapshot was captured at.
func (s *AdjacencySnapshot) Seq() uint64 { return s.seq }

// NumEdges returns the number of directed adjacency entries (each
// undirected edge counts twice).
func (s *AdjacencySnapshot) NumEdges() int { return len(s.nbrs) }

// Neighbors returns the sorted distinct entities adjacent to id. The
// returned slice aliases the snapshot's backing array and must be treated
// as read-only.
func (s *AdjacencySnapshot) Neighbors(id kg.EntityID) []kg.EntityID {
	if int(id) >= len(s.offsets)-1 {
		return nil
	}
	return s.nbrs[s.offsets[id]:s.offsets[id+1]]
}

// Degree returns the number of distinct neighbors of id.
func (s *AdjacencySnapshot) Degree(id kg.EntityID) int {
	if int(id) >= len(s.offsets)-1 {
		return 0
	}
	return int(s.offsets[id+1] - s.offsets[id])
}

// RandomWalks generates n random walks of the given length starting at
// source, using rng for reproducibility. Walk steps are plain CSR slice
// lookups; no locks are taken and no per-step allocation happens.
func (s *AdjacencySnapshot) RandomWalks(source kg.EntityID, n, length int, rng *rand.Rand) [][]kg.EntityID {
	walks := make([][]kg.EntityID, 0, n)
	for i := 0; i < n; i++ {
		walk := make([]kg.EntityID, 0, length+1)
		walk = append(walk, source)
		cur := source
		for step := 0; step < length; step++ {
			nbrs := s.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))]
			walk = append(walk, cur)
		}
		walks = append(walks, walk)
	}
	return walks
}

// snapshotCache is the engine-side holder: one immutable snapshot behind
// an atomic pointer, a mutex serializing rebuilds so concurrent readers
// of a stale snapshot trigger exactly one rebuild.
type snapshotCache struct {
	cur     atomic.Pointer[AdjacencySnapshot]
	rebuild sync.Mutex
}

// incrementalMaxDeltaFraction gates the incremental maintenance path: the
// delta is applied to the previous CSR arrays only when the pending count
// of adjacency-relevant (entity-valued, non-self-loop) mutations is at
// most this fraction of the snapshot's edge count (denominator of the
// fraction; 4 = delta ≤ 25% of edges). Past that, patching every touched
// row plus copying the rest approaches the cost of a from-scratch
// rebuild, which also re-compacts the arrays. Literal mutations are
// excluded from the count: they can never change adjacency, so even an
// arbitrarily long literal-churn delta (ODKE refreshing heights and
// follower counts) stays on the cheap re-stamp path.
const incrementalMaxDeltaFraction = 4

// Snapshot returns a CSR adjacency snapshot no older than the graph's
// mutation watermark at call time. The fast path is one atomic load plus
// one watermark read. The slow path rebuilds under a mutex and publishes
// the result for all readers — incrementally when the mutation delta
// since the cached snapshot is small relative to its edge count (affected
// rows are recomputed from the graph, untouched row ranges are
// bulk-copied from the previous arrays), from scratch otherwise.
func (e *Engine) Snapshot() *AdjacencySnapshot {
	want := e.g.LastSeq()
	if s := e.snap.cur.Load(); s != nil && s.seq == want {
		return s
	}
	e.snap.rebuild.Lock()
	defer e.snap.rebuild.Unlock()
	// Re-check under the rebuild lock: another goroutine may have just
	// built a fresh-enough snapshot.
	if s := e.snap.cur.Load(); s != nil && s.seq >= want {
		return s
	}
	s := advanceAdjacencySnapshot(e.g, e.snap.cur.Load())
	e.snap.cur.Store(s)
	return s
}

// advanceAdjacencySnapshot brings prev (possibly nil) up to the graph's
// current watermark, choosing between incremental delta application and a
// full rebuild.
func advanceAdjacencySnapshot(g *kg.Graph, prev *AdjacencySnapshot) *AdjacencySnapshot {
	if prev == nil {
		return buildAdjacencySnapshot(g)
	}
	// Snapshots are immutable, so the feed is transient: positioned at the
	// previous snapshot's watermark, pulled once. An incomplete pull means
	// log compaction has discarded entries in (prev.seq, now] — the
	// changefeed's rematerialization fallback, which here is a full
	// rebuild.
	muts, complete := g.Feed(prev.seq).Pull()
	if !complete {
		return buildAdjacencySnapshot(g)
	}
	relevant := 0
	for _, m := range muts {
		if m.T.Object.IsEntity() && m.T.Subject != m.T.Object.Entity {
			relevant++
		}
	}
	// Note the gate also sends every relevant delta on an edge-free
	// snapshot to the rebuild path (relevant*N > 0), while pure literal
	// churn on such a snapshot stays on the cheap re-stamp.
	if relevant*incrementalMaxDeltaFraction > prev.NumEdges() {
		return buildAdjacencySnapshot(g)
	}
	return applyAdjacencyDelta(prev, muts)
}

// applyAdjacencyDelta produces the successor snapshot of prev after muts,
// which must be the exact ordered mutation feed (prev.Seq(), w] as
// returned by MutationsSince(prev.Seq()) — every OpAssert a fact that was
// really added, every OpRetract one that was really removed. That
// exactness lets the delta be applied with no graph reads at all: the net
// per-pair count change across the delta, added to the pair's previous
// multiplicity (1 if present in the rows, more if recorded in mult),
// yields the pair's final multiplicity, and only 0↔positive transitions
// change the rows. Rows with no structural change are bulk-copied in
// contiguous runs; changed rows are patched with a sorted merge.
func applyAdjacencyDelta(prev *AdjacencySnapshot, muts []kg.Mutation) *AdjacencySnapshot {
	seq := prev.seq + uint64(len(muts))

	// Net multiplicity change per undirected pair across the delta.
	counts := make(map[edgePair]int32, len(muts))
	for _, m := range muts {
		if !m.T.Object.IsEntity() || m.T.Subject == m.T.Object.Entity {
			continue // literals and self-loops never form rows
		}
		pair := pairOf(m.T.Subject, m.T.Object.Entity)
		if m.Op == kg.OpAssert {
			counts[pair]++
		} else {
			counts[pair]--
		}
	}

	// Classify each touched pair: multiplicity-only change (rows keep
	// their entries) vs structural add/remove on both endpoint rows.
	var (
		adds, dels map[kg.EntityID][]kg.EntityID
		newMult    map[edgePair]int32
	)
	cloneMult := func() {
		if newMult == nil {
			newMult = make(map[edgePair]int32, len(prev.mult)+8)
			for p, c := range prev.mult {
				newMult[p] = c
			}
		}
	}
	appendTo := func(m map[kg.EntityID][]kg.EntityID, pair edgePair) map[kg.EntityID][]kg.EntityID {
		if m == nil {
			m = make(map[kg.EntityID][]kg.EntityID)
		}
		m[pair.A] = append(m[pair.A], pair.B)
		m[pair.B] = append(m[pair.B], pair.A)
		return m
	}
	for pair, net := range counts {
		if net == 0 {
			continue
		}
		var start int32
		if hasNeighbor(prev.Neighbors(pair.A), pair.B) {
			start = 1
			if c, ok := prev.mult[pair]; ok {
				start = c
			}
		}
		final := start + net // the exact log guarantees final >= 0
		switch {
		case final >= 2:
			cloneMult()
			newMult[pair] = final
		case start >= 2: // final dropped to 0 or 1: the entry goes away
			cloneMult()
			delete(newMult, pair)
		}
		if start == 0 && final > 0 {
			adds = appendTo(adds, pair)
		} else if start > 0 && final == 0 {
			dels = appendTo(dels, pair)
		}
	}
	if newMult == nil {
		newMult = prev.mult
	}
	if len(adds) == 0 && len(dels) == 0 {
		// No structural row change (literal-only delta, parallel-edge
		// multiplicity shifts, or changes that cancelled out): share the
		// arrays, re-stamp the watermark.
		return &AdjacencySnapshot{seq: seq, offsets: prev.offsets, nbrs: prev.nbrs, mult: newMult}
	}

	touched := make([]kg.EntityID, 0, len(adds)+len(dels))
	for id := range adds {
		touched = append(touched, id)
	}
	for id := range dels {
		if _, dup := adds[id]; !dup {
			touched = append(touched, id)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	prevRows := len(prev.offsets) - 1
	numRows := prevRows
	if last := int(touched[len(touched)-1]); last >= numRows {
		numRows = last + 1
	}
	grow := 0
	for _, ns := range adds {
		grow += len(ns)
	}
	offsets := make([]int32, numRows+1)
	nbrs := make([]kg.EntityID, 0, len(prev.nbrs)+grow)

	ti := 0
	for id := 0; id < numRows; {
		if ti < len(touched) && int(touched[ti]) == id {
			offsets[id] = int32(len(nbrs))
			nbrs = mergeRow(nbrs, prev.Neighbors(kg.EntityID(id)), adds[kg.EntityID(id)], dels[kg.EntityID(id)])
			id++
			ti++
			continue
		}
		// Bulk-copy the run of untouched rows up to the next patched row.
		end := numRows
		if ti < len(touched) {
			end = int(touched[ti])
		}
		if id < prevRows {
			cend := end
			if cend > prevRows {
				cend = prevRows
			}
			base := prev.offsets[id]
			shift := int32(len(nbrs)) - base
			for j := id; j < cend; j++ {
				offsets[j] = prev.offsets[j] + shift
			}
			nbrs = append(nbrs, prev.nbrs[base:prev.offsets[cend]]...)
			id = cend
		}
		// Untouched rows past the previous snapshot's row space have no
		// edges: any edge reaching them would be a structural add.
		for ; id < end; id++ {
			offsets[id] = int32(len(nbrs))
		}
	}
	offsets[numRows] = int32(len(nbrs))
	return &AdjacencySnapshot{seq: seq, offsets: offsets, nbrs: nbrs, mult: newMult}
}

// hasNeighbor reports whether sorted row contains v.
func hasNeighbor(row []kg.EntityID, v kg.EntityID) bool {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// mergeRow appends prev ∪ adds \ dels to out in sorted order. adds is
// disjoint from prev, dels ⊆ prev, and both are small and unsorted.
func mergeRow(out, prev, adds, dels []kg.EntityID) []kg.EntityID {
	sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })
	sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	ai, di := 0, 0
	for _, n := range prev {
		for ai < len(adds) && adds[ai] < n {
			out = append(out, adds[ai])
			ai++
		}
		if di < len(dels) && dels[di] == n {
			di++
			continue
		}
		out = append(out, n)
	}
	return append(out, adds[ai:]...)
}

// buildAdjacencySnapshot scans the graph's entity-valued triples once
// under the read lock (collecting directed pairs), then builds the CSR
// arrays outside the lock: counting sort into rows, per-row sort, dedup,
// self-loop removal, and offset compaction.
func buildAdjacencySnapshot(g *kg.Graph) *AdjacencySnapshot {
	numRows := g.NumEntities() + 1 // rows indexed by EntityID; index 0 unused
	pairs := make([]kg.EntityID, 0, 1024)
	seq := g.TriplesSnapshot(func(t kg.Triple) bool {
		if t.Object.IsEntity() {
			pairs = append(pairs, t.Subject, t.Object.Entity)
		}
		return true
	})
	// An edge endpoint can exceed NumEntities() only if entities were
	// registered between the count and the scan; widen the row space to
	// whatever the scan actually saw.
	for _, id := range pairs {
		if int(id) >= numRows {
			numRows = int(id) + 1
		}
	}

	counts := make([]int32, numRows+1)
	for i := 0; i < len(pairs); i += 2 {
		s, o := pairs[i], pairs[i+1]
		if s == o {
			continue // self-loops never appear in neighbor sets
		}
		counts[s]++
		counts[o]++
	}
	offsets := make([]int32, numRows+1)
	var total int32
	for id := 0; id < numRows; id++ {
		offsets[id] = total
		total += counts[id]
	}
	offsets[numRows] = total

	nbrs := make([]kg.EntityID, total)
	fill := make([]int32, numRows)
	for i := 0; i < len(pairs); i += 2 {
		s, o := pairs[i], pairs[i+1]
		if s == o {
			continue
		}
		nbrs[offsets[s]+fill[s]] = o
		fill[s]++
		nbrs[offsets[o]+fill[o]] = s
		fill[o]++
	}

	// Sort each row and compact duplicates (parallel edges via different
	// predicates, or symmetric fact pairs) in place, then re-pack. A
	// duplicate run of length c in row u means pair {u, n} is connected by
	// c triples; runs ≥ 2 are recorded in mult (once per pair, from the
	// smaller endpoint) so incremental maintenance can retract parallel
	// edges without consulting the graph.
	packed := nbrs[:0]
	newOffsets := make([]int32, numRows+1)
	mult := make(map[edgePair]int32)
	for id := 0; id < numRows; id++ {
		row := nbrs[offsets[id] : offsets[id]+fill[id]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOffsets[id] = int32(len(packed))
		var prev kg.EntityID
		var run int32
		flushRun := func() {
			if run >= 2 && kg.EntityID(id) < prev {
				mult[edgePair{A: kg.EntityID(id), B: prev}] = run
			}
		}
		for i, n := range row {
			if i > 0 && n == prev {
				run++
				continue
			}
			flushRun()
			packed = append(packed, n)
			prev, run = n, 1
		}
		if len(row) > 0 {
			flushRun()
		}
	}
	newOffsets[numRows] = int32(len(packed))
	return &AdjacencySnapshot{seq: seq, offsets: newOffsets, nbrs: packed, mult: mult}
}
