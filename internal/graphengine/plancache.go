package graphengine

import (
	"container/list"
	"sync"

	"saga/internal/metrics"
)

// planCacheCapacity bounds the Engine's plan cache. Shapes are small
// (tens of bytes) and plans smaller, so the bound exists to cap an
// adversarial stream of distinct shapes, not memory pressure from
// ordinary workloads — real query mixes have a handful of shapes.
const planCacheCapacity = 256

// planCache memoizes Plans by query shape with LRU eviction. A hit
// skips planning entirely — no FactCount or SubjectsWithCount probes —
// after a cheap revalidation against the predicate counters (at most
// one PredicateFrequency read per distinct predicate in the query). A
// plan whose counters have drifted past the staleness rule (see
// Plan.stale) is rebuilt in place; the invalidation counts as a miss.
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of *planEntry; front = most recently used
	byShape map[string]*list.Element

	hits          metrics.Counter
	misses        metrics.Counter
	invalidations metrics.Counter
	evictions     metrics.Counter
}

type planEntry struct {
	shape string
	plan  *Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		lru:     list.New(),
		byShape: make(map[string]*list.Element),
	}
}

// plan returns the cached plan for the shape, building (or rebuilding)
// it when absent or stale. buildPlan runs outside the cache lock — it
// reads graph counters and may take a while on wide queries — so two
// concurrent misses on one shape may both build; last insert wins, which
// is harmless (the plans are equivalent).
func (pc *planCache) plan(g conjGraph, clauses []Clause, shape string) *Plan {
	pc.mu.Lock()
	if el, ok := pc.byShape[shape]; ok {
		p := el.Value.(*planEntry).plan
		if !p.stale(g) {
			pc.lru.MoveToFront(el)
			pc.mu.Unlock()
			pc.hits.Inc()
			return p
		}
		pc.lru.Remove(el)
		delete(pc.byShape, shape)
		pc.invalidations.Inc()
	}
	pc.mu.Unlock()
	pc.misses.Inc()

	p := buildPlan(g, clauses, shape)

	pc.mu.Lock()
	if el, ok := pc.byShape[shape]; ok {
		// A concurrent build landed first; replace its plan (ours is
		// fresher or equivalent) without growing the list.
		el.Value.(*planEntry).plan = p
		pc.lru.MoveToFront(el)
	} else {
		pc.byShape[shape] = pc.lru.PushFront(&planEntry{shape: shape, plan: p})
		for pc.lru.Len() > pc.cap {
			oldest := pc.lru.Back()
			pc.lru.Remove(oldest)
			delete(pc.byShape, oldest.Value.(*planEntry).shape)
			pc.evictions.Inc()
		}
	}
	pc.mu.Unlock()
	return p
}

// PlanCacheStats is a snapshot of the plan cache's counters: Hits are
// lookups served without planning, Misses include both cold lookups and
// Invalidations (stale plans rebuilt), Evictions count LRU drops at
// capacity, and Size is the current entry count.
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Size          int   `json:"size"`
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	size := pc.lru.Len()
	pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits.Value(),
		Misses:        pc.misses.Value(),
		Invalidations: pc.invalidations.Value(),
		Evictions:     pc.evictions.Value(),
		Size:          size,
	}
}
