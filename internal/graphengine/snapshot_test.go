package graphengine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"saga/internal/kg"
)

// naiveNeighbors recomputes the undirected entity adjacency of id the way
// the engine did before CSR snapshots: from the live SPO/OSP indexes,
// deduplicated through a map, self-loops removed, sorted. It is the
// reference the snapshot must agree with exactly.
func naiveNeighbors(g *kg.Graph, id kg.EntityID) []kg.EntityID {
	set := make(map[kg.EntityID]struct{})
	for _, t := range g.Outgoing(id) {
		if t.Object.IsEntity() {
			set[t.Object.Entity] = struct{}{}
		}
	}
	for _, t := range g.Incoming(id) {
		set[t.Subject] = struct{}{}
	}
	delete(set, id)
	out := make([]kg.EntityID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []kg.EntityID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotMatchesNaiveNeighbors drives a randomized interleaving of
// Assert and Retract calls and checks, at every step, that the CSR
// snapshot's neighbor sets exactly match the naive lock-held computation
// for every entity — including entities with no edges and freshly
// drained adjacency rows.
func TestSnapshotMatchesNaiveNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := kg.NewGraph()
	e := New(g)

	const numEnts = 24
	ids := make([]kg.EntityID, numEnts)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("Q%d", i), Name: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	preds := make([]kg.PredicateID, 3)
	for i := range preds {
		p, err := g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}

	// live tracks asserted triples so retracts hit real facts ~half the time.
	var live []kg.Triple
	randomTriple := func() kg.Triple {
		return kg.Triple{
			Subject:   ids[rng.Intn(numEnts)],
			Predicate: preds[rng.Intn(len(preds))],
			Object:    kg.EntityValue(ids[rng.Intn(numEnts)]),
		}
	}

	for step := 0; step < 600; step++ {
		switch {
		case len(live) > 0 && rng.Intn(3) == 0:
			i := rng.Intn(len(live))
			tr := live[i]
			g.Retract(tr)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case rng.Intn(6) == 0:
			// Retract something that may or may not exist.
			g.Retract(randomTriple())
		default:
			tr := randomTriple()
			if isNew, err := g.AssertNew(tr); err != nil {
				t.Fatal(err)
			} else if isNew {
				live = append(live, tr)
			}
		}

		snap := e.Snapshot()
		if snap.Seq() != g.LastSeq() {
			t.Fatalf("step %d: snapshot seq %d != graph seq %d", step, snap.Seq(), g.LastSeq())
		}
		for _, id := range ids {
			want := naiveNeighbors(g, id)
			got := snap.Neighbors(id)
			if !equalIDs(want, got) {
				t.Fatalf("step %d: Neighbors(%v) = %v, want %v", step, id, got, want)
			}
			if snap.Degree(id) != len(want) {
				t.Fatalf("step %d: Degree(%v) = %d, want %d", step, id, snap.Degree(id), len(want))
			}
		}
		// The public Engine.Neighbors must agree with the naive result too.
		probe := ids[rng.Intn(numEnts)]
		if got := e.Neighbors(probe); !equalIDs(naiveNeighbors(g, probe), got) {
			t.Fatalf("step %d: Engine.Neighbors(%v) = %v", step, probe, got)
		}
	}
}

// TestSnapshotStalenessWatermark checks the invalidation contract: a
// snapshot is reused verbatim while the watermark is unchanged and
// replaced after any mutation, and no-op mutations (duplicate assert,
// missing retract) do not invalidate it.
func TestSnapshotStalenessWatermark(t *testing.T) {
	g := kg.NewGraph()
	e := New(g)
	a, _ := g.AddEntity(kg.Entity{Key: "a"})
	b, _ := g.AddEntity(kg.Entity{Key: "b"})
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	tr := kg.Triple{Subject: a, Predicate: p, Object: kg.EntityValue(b)}
	if err := g.Assert(tr); err != nil {
		t.Fatal(err)
	}

	s1 := e.Snapshot()
	if s2 := e.Snapshot(); s1 != s2 {
		t.Fatal("snapshot rebuilt without mutation")
	}
	if err := g.Assert(tr); err != nil { // duplicate: no watermark bump
		t.Fatal(err)
	}
	if s2 := e.Snapshot(); s1 != s2 {
		t.Fatal("duplicate assert invalidated snapshot")
	}
	if g.Retract(kg.Triple{Subject: b, Predicate: p, Object: kg.EntityValue(a)}) {
		t.Fatal("retract of absent fact reported true")
	}
	if s2 := e.Snapshot(); s1 != s2 {
		t.Fatal("no-op retract invalidated snapshot")
	}

	if !g.Retract(tr) {
		t.Fatal("retract failed")
	}
	s3 := e.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not rebuilt after mutation")
	}
	if len(s3.Neighbors(a)) != 0 || len(s3.Neighbors(b)) != 0 {
		t.Fatalf("neighbors survived retract: %v %v", s3.Neighbors(a), s3.Neighbors(b))
	}
	// The old snapshot must be unchanged (immutability): readers holding
	// it still see the pre-retract adjacency.
	if len(s1.Neighbors(a)) != 1 || s1.Neighbors(a)[0] != b {
		t.Fatalf("acquired snapshot mutated: %v", s1.Neighbors(a))
	}
}

// TestSnapshotConcurrentReadersAndWriters exercises concurrent snapshot
// reads during writes; run with -race. Readers must always observe an
// internally consistent snapshot (sorted, deduplicated, self-loop-free
// rows) regardless of interleaving with writers.
func TestSnapshotConcurrentReadersAndWriters(t *testing.T) {
	g := kg.NewGraph()
	e := New(g)
	const numEnts = 32
	ids := make([]kg.EntityID, numEnts)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("Q%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	p, err := g.AddPredicate(kg.Predicate{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr := kg.Triple{
					Subject:   ids[rng.Intn(numEnts)],
					Predicate: p,
					Object:    kg.EntityValue(ids[rng.Intn(numEnts)]),
				}
				if rng.Intn(2) == 0 {
					_ = g.Assert(tr)
				} else {
					g.Retract(tr)
				}
			}
		}(int64(w + 1))
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				id := ids[rng.Intn(numEnts)]
				snap := e.Snapshot()
				row := snap.Neighbors(id)
				for j := 1; j < len(row); j++ {
					if row[j] <= row[j-1] {
						t.Errorf("row not sorted/deduped: %v", row)
						return
					}
				}
				for _, n := range row {
					if n == id {
						t.Errorf("self-loop in row of %v: %v", id, row)
						return
					}
				}
				_ = e.Neighbors(id)
				if i%50 == 0 {
					_ = e.BFS(id, 2)
					_ = e.PersonalizedPageRank(id, 0.15, 3)
				}
			}
		}(int64(100 + r))
	}
	// Writers churn for the readers' whole bounded run, then stop.
	readers.Wait()
	close(stop)
	writers.Wait()
}
