package graphengine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"saga/internal/kg"
)

// incrFixture builds a graph with pool entities and a base layer of
// random entity edges so snapshots start non-trivial.
func incrFixture(t testing.TB, shards, pool, baseEdges int, seed int64) (*kg.Graph, []kg.EntityID, kg.PredicateID) {
	t.Helper()
	g := kg.NewGraphWithShards(shards)
	p, err := g.AddPredicate(kg.Predicate{Name: "rel"})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]kg.EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < baseEdges; i++ {
		s, o := ids[rng.Intn(pool)], ids[rng.Intn(pool)]
		if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids, p
}

// snapshotsEqual compares two snapshots row by row over numRows rows.
func snapshotsEqual(t *testing.T, step int, got, want *AdjacencySnapshot) {
	t.Helper()
	if got.Seq() != want.Seq() {
		t.Fatalf("step %d: snapshot seq %d, rebuild seq %d", step, got.Seq(), want.Seq())
	}
	rows := len(want.offsets) - 1
	if gr := len(got.offsets) - 1; gr > rows {
		rows = gr
	}
	for id := 0; id < rows; id++ {
		g, w := got.Neighbors(kg.EntityID(id)), want.Neighbors(kg.EntityID(id))
		if len(g) != len(w) {
			t.Fatalf("step %d: row %d has %d neighbors, rebuild has %d (%v vs %v)", step, id, len(g), len(w), g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("step %d: row %d differs at %d: %v vs %v", step, id, i, g, w)
			}
		}
	}
}

// TestIncrementalSnapshotEqualsRebuild is the delta-apply correctness
// property: over randomized Assert/Retract interleavings — including
// parallel edges via a second predicate (multiplicity), literal-only
// deltas, self-loops, and entities added after the first capture — the
// incrementally maintained snapshot must be row-identical to a
// from-scratch rebuild at every step.
func TestIncrementalSnapshotEqualsRebuild(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := 40 + rng.Intn(40)
		g, ids, p := incrFixture(t, 1+rng.Intn(8), pool, 300, seed*7+1)
		p2, err := g.AddPredicate(kg.Predicate{Name: "rel2"})
		if err != nil {
			t.Fatal(err)
		}
		lit, err := g.AddPredicate(kg.Predicate{Name: "lit"})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(g)
		if eng.Snapshot().Seq() != g.LastSeq() {
			t.Fatal("initial snapshot not at watermark")
		}
		for step := 0; step < 30; step++ {
			// Small random delta, mostly below the incremental threshold;
			// occasionally large enough to exercise the rebuild path too.
			n := 1 + rng.Intn(8)
			if step%9 == 8 {
				n = 80
			}
			for i := 0; i < n; i++ {
				pred := p
				if rng.Intn(3) == 0 {
					pred = p2
				}
				s := ids[rng.Intn(len(ids))]
				switch rng.Intn(5) {
				case 0: // retract a random (possibly absent) edge
					g.Retract(kg.Triple{Subject: s, Predicate: pred, Object: kg.EntityValue(ids[rng.Intn(len(ids))])})
				case 1: // literal fact: must not disturb adjacency
					if err := g.Assert(kg.Triple{Subject: s, Predicate: lit, Object: kg.IntValue(int64(rng.Intn(50)))}); err != nil {
						t.Fatal(err)
					}
				case 2: // self-loop: never appears in neighbor rows
					if err := g.Assert(kg.Triple{Subject: s, Predicate: pred, Object: kg.EntityValue(s)}); err != nil {
						t.Fatal(err)
					}
				default:
					o := ids[rng.Intn(len(ids))]
					if err := g.Assert(kg.Triple{Subject: s, Predicate: pred, Object: kg.EntityValue(o)}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if step%7 == 6 {
				// Edge reaching an entity registered after the last capture:
				// the new row must appear.
				id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("late%d-%d", seed, step)})
				if err != nil {
					t.Fatal(err)
				}
				if err := g.Assert(kg.Triple{Subject: ids[rng.Intn(len(ids))], Predicate: p, Object: kg.EntityValue(id)}); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			snapshotsEqual(t, step, eng.Snapshot(), buildAdjacencySnapshot(g))
		}
	}
}

// TestApplyAdjacencyDeltaDirect forces the incremental path regardless of
// the size threshold, so small deltas on small graphs are covered. It
// additionally checks the parallel-edge multiplicity bookkeeping against
// the rebuilt ground truth at every step — retracting one of two
// parallel edges must keep the neighbor entry, and the second predicate
// guarantees such pairs occur.
func TestApplyAdjacencyDeltaDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, ids, p := incrFixture(t, 4, 12, 20, 5)
	p2, err := g.AddPredicate(kg.Predicate{Name: "rel2"})
	if err != nil {
		t.Fatal(err)
	}
	prev := buildAdjacencySnapshot(g)
	for step := 0; step < 80; step++ {
		pred := p
		if rng.Intn(2) == 0 {
			pred = p2
		}
		s, o := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			g.Retract(kg.Triple{Subject: s, Predicate: pred, Object: kg.EntityValue(o)})
		} else if err := g.Assert(kg.Triple{Subject: s, Predicate: pred, Object: kg.EntityValue(o)}); err != nil {
			t.Fatal(err)
		}
		muts, complete := g.Feed(prev.Seq()).Pull()
		if !complete {
			t.Fatalf("step %d: feed incomplete", step)
		}
		next := applyAdjacencyDelta(prev, muts)
		want := buildAdjacencySnapshot(g)
		snapshotsEqual(t, step, next, want)
		if len(next.mult) != len(want.mult) {
			t.Fatalf("step %d: mult has %d entries, rebuild has %d (%v vs %v)", step, len(next.mult), len(want.mult), next.mult, want.mult)
		}
		for pair, c := range want.mult {
			if next.mult[pair] != c {
				t.Fatalf("step %d: mult[%v] = %d, rebuild says %d", step, pair, next.mult[pair], c)
			}
		}
		prev = next
	}
}

// TestSnapshotConcurrentWithShardedWrites hammers Snapshot (and the
// traversals that consume it) while sharded writers mutate the graph:
// every acquired snapshot must be internally consistent and at a
// watermark no older than the last mutation its acquirer observed.
func TestSnapshotConcurrentWithShardedWrites(t *testing.T) {
	g, ids, p := incrFixture(t, 8, 64, 200, 3)
	eng := New(g)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				s, o := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				tr := kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}
				if rng.Intn(3) == 0 {
					g.Retract(tr)
				} else {
					_ = g.Assert(tr)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := g.LastSeq()
				snap := eng.Snapshot()
				if snap.Seq() < before {
					t.Errorf("snapshot seq %d older than previously observed watermark %d", snap.Seq(), before)
					return
				}
				// Structural consistency: offsets monotone, neighbors in bounds.
				rows := len(snap.offsets) - 1
				for id := 0; id <= rows-1; id++ {
					if snap.offsets[id] > snap.offsets[id+1] {
						t.Errorf("offsets not monotone at %d", id)
						return
					}
				}
				for _, n := range snap.nbrs {
					if int(n) <= 0 {
						t.Errorf("out-of-range neighbor %v", n)
						return
					}
				}
				src := ids[rng.Intn(len(ids))]
				_ = eng.BFS(src, 2)
				_ = eng.Neighbors(src)
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	// After quiescence the snapshot must converge to the final watermark.
	if s := eng.Snapshot(); s.Seq() != g.LastSeq() {
		t.Fatalf("final snapshot at %d, watermark %d", s.Seq(), g.LastSeq())
	}
}
