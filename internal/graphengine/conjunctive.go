package graphengine

import (
	"slices"

	"saga/internal/kg"
)

// Conjunctive queries over the graph: the query shape behind the paper's
// §1 example ("movies directed by Benicio Del Toro" = ?m with
// (?m, directedBy, delToro) ∧ (?m, type, Movie)). A query is a set of
// clauses over variables and constants; evaluation is a selectivity-
// ordered nested-loop join with binding propagation, which is how the
// Saga graph engine's retrieval path behaves for small conjunctive
// patterns. The solver itself streams (see StreamConjunctive in
// stream.go); QueryConjunctive below is the materializing compatibility
// shim.

// Term is one position of a clause: either a variable (Var != "") or a
// constant. Subject terms must be entities; object terms may be any
// value.
type Term struct {
	// Var names a variable ("?m"); empty means the term is a constant.
	Var string
	// Const is the constant value (entity or literal) when Var is empty.
	Const kg.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v kg.Value) Term { return Term{Const: v} }

// CE returns a constant entity term.
func CE(id kg.EntityID) Term { return Term{Const: kg.EntityValue(id)} }

// Clause is one triple pattern of a conjunctive query. The predicate is
// always constant (variable predicates explode the search space and the
// platform's use cases never need them).
type Clause struct {
	Subject   Term
	Predicate kg.PredicateID
	Object    Term
}

// Binding maps variable names to values.
type Binding map[string]kg.Value

// QueryConjunctive evaluates the conjunction and returns all satisfying
// bindings. It is a collect-and-sort shim over StreamConjunctive, kept
// for callers (and tests) that pin the sorted order: the stream already
// collapses duplicates on the bindings' kg.ValueKey tuples in sorted-
// variable order, and this shim additionally sorts the collected rows by
// those same tuples, so both identity and order are defined by comparable
// keys, never by rendered strings. Callers that do not need every row
// sorted should consume StreamConjunctive directly and push their limit
// into the solve.
func (e *Engine) QueryConjunctive(clauses []Clause) ([]Binding, error) {
	var out []Binding
	for b, err := range e.StreamConjunctive(clauses, QueryOptions{}) {
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	// Deterministic order on the comparable key tuples (the stream has
	// already deduplicated on them).
	vars := queryVars(clauses)
	type keyedBinding struct {
		b   Binding
		key []kg.ValueKey
	}
	rows := make([]keyedBinding, len(out))
	for i, b := range out {
		row := make([]kg.ValueKey, len(vars))
		for j, name := range vars {
			row[j] = b[name].MapKey()
		}
		rows[i] = keyedBinding{b: b, key: row}
	}
	slices.SortFunc(rows, func(a, b keyedBinding) int { return compareKeyRows(a.key, b.key) })
	for i, r := range rows {
		out[i] = r.b
	}
	return out, nil
}

// compareKeyRows lexicographically orders two equal-length ValueKey
// tuples.
func compareKeyRows(a, b []kg.ValueKey) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// resolve substitutes the binding into a term, returning the concrete
// value and whether the term is now constant.
func resolve(t Term, bound Binding) (kg.Value, bool) {
	if t.Var == "" {
		return t.Const, true
	}
	v, ok := bound[t.Var]
	return v, ok
}

// estimate approximates how many triples expanding the clause would
// enumerate under the binding (kept as a method for the planner tests;
// the solver calls estimateOn).
func (e *Engine) estimate(c Clause, bound Binding) int {
	return estimateOn(e.g, c, bound)
}

// estimateOn approximates how many triples expanding the clause would
// enumerate under the binding. Every arm is a counter lookup (FactCount,
// SubjectsWithCount, PredicateFrequency) — no result slice is ever
// materialized for cost estimation, so the planner can afford to
// re-estimate at every join depth.
func estimateOn(g conjGraph, c Clause, bound Binding) int {
	s, sBound := resolve(c.Subject, bound)
	o, oBound := resolve(c.Object, bound)
	switch {
	case sBound && oBound:
		return 1
	case sBound:
		return g.FactCount(s.Entity, c.Predicate) + 1
	case oBound:
		return g.SubjectsWithCount(c.Predicate, o) + 1
	default:
		return g.PredicateFrequency(c.Predicate) + 2
	}
}
