package graphengine

import (
	"fmt"
	"slices"
	"sort"

	"saga/internal/kg"
)

// Conjunctive queries over the graph: the query shape behind the paper's
// §1 example ("movies directed by Benicio Del Toro" = ?m with
// (?m, directedBy, delToro) ∧ (?m, type, Movie)). A query is a set of
// clauses over variables and constants; evaluation is a selectivity-
// ordered nested-loop join with binding propagation, which is how the
// Saga graph engine's retrieval path behaves for small conjunctive
// patterns.

// Term is one position of a clause: either a variable (Var != "") or a
// constant. Subject terms must be entities; object terms may be any
// value.
type Term struct {
	// Var names a variable ("?m"); empty means the term is a constant.
	Var string
	// Const is the constant value (entity or literal) when Var is empty.
	Const kg.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v kg.Value) Term { return Term{Const: v} }

// CE returns a constant entity term.
func CE(id kg.EntityID) Term { return Term{Const: kg.EntityValue(id)} }

// Clause is one triple pattern of a conjunctive query. The predicate is
// always constant (variable predicates explode the search space and the
// platform's use cases never need them).
type Clause struct {
	Subject   Term
	Predicate kg.PredicateID
	Object    Term
}

// Binding maps variable names to values.
type Binding map[string]kg.Value

// QueryConjunctive evaluates the conjunction and returns all satisfying
// bindings. Duplicate bindings are collapsed and the result order is
// deterministic; both identity and order are defined by the bindings'
// kg.ValueKey tuples in sorted-variable order, never by rendered strings
// (a string encoding let adversarial literals containing the separator
// characters collide distinct bindings).
//
// Evaluation re-picks the cheapest unresolved clause at every join depth
// from the current partial binding, so the join order adapts as variables
// bind — affordable because the cost probes are counter lookups on the
// graph's predicate-major index, not materialized result slices.
func (e *Engine) QueryConjunctive(clauses []Clause) ([]Binding, error) {
	for i, c := range clauses {
		if c.Subject.Var == "" && !c.Subject.Const.IsEntity() {
			return nil, fmt.Errorf("graphengine: clause %d: constant subject must be an entity", i)
		}
		if c.Predicate == kg.NoPredicate {
			return nil, fmt.Errorf("graphengine: clause %d: predicate required", i)
		}
	}
	// Canonical variable order: every leaf binding is materialized as the
	// tuple of its values in this order, which is what dedup and result
	// ordering compare.
	var vars []string
	for _, c := range clauses {
		for _, t := range [2]Term{c.Subject, c.Object} {
			if t.Var != "" && !slices.Contains(vars, t.Var) {
				vars = append(vars, t.Var)
			}
		}
	}
	sort.Strings(vars)

	s := solver{
		e:       e,
		vars:    vars,
		clauses: append([]Clause(nil), clauses...),
		bound:   make(Binding, len(vars)),
	}
	s.solve(0)

	// Deterministic order + dedup on the comparable key tuples.
	order := make([]int, len(s.rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return compareKeyRows(s.keys[order[a]], s.keys[order[b]]) < 0
	})
	out := make([]Binding, 0, len(s.rows))
	for i, idx := range order {
		if i > 0 && compareKeyRows(s.keys[order[i-1]], s.keys[idx]) == 0 {
			continue
		}
		b := make(Binding, len(vars))
		for j, name := range vars {
			b[name] = s.rows[idx][j]
		}
		out = append(out, b)
	}
	return out, nil
}

// compareKeyRows lexicographically orders two equal-length ValueKey
// tuples.
func compareKeyRows(a, b []kg.ValueKey) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// solver carries the state of one QueryConjunctive evaluation: the
// in-place reorderable clause list, the mutable partial binding, and the
// accumulated result rows with their comparable key tuples.
type solver struct {
	e       *Engine
	vars    []string
	clauses []Clause
	bound   Binding
	rows    [][]kg.Value
	keys    [][]kg.ValueKey
}

// solve evaluates clauses[idx:] under the current binding: it swaps the
// clause with the smallest estimated extension to position idx (cost
// re-estimated at every depth from the variables bound so far),
// enumerates its matches, and recurses. At a leaf every variable is
// bound; the binding is captured as a value row plus its key tuple.
func (s *solver) solve(idx int) {
	if idx == len(s.clauses) {
		row := make([]kg.Value, len(s.vars))
		keys := make([]kg.ValueKey, len(s.vars))
		for i, name := range s.vars {
			v := s.bound[name]
			row[i] = v
			keys[i] = v.MapKey()
		}
		s.rows = append(s.rows, row)
		s.keys = append(s.keys, keys)
		return
	}
	best := idx
	bestCost := s.e.estimate(s.clauses[idx], s.bound)
	for j := idx + 1; j < len(s.clauses); j++ {
		if cost := s.e.estimate(s.clauses[j], s.bound); cost < bestCost {
			best, bestCost = j, cost
		}
	}
	s.clauses[idx], s.clauses[best] = s.clauses[best], s.clauses[idx]
	chosen := s.clauses[idx]

	// Fully resolved clause: a single membership check, no candidate
	// slice and no bindings to roll back. The lookup is SPO identity
	// (like every constant-object index path); a var-bound object then
	// re-applies the join's Equal semantics, so a NaN-valued binding is
	// pruned here exactly as bindVar prunes it on the general path.
	if sv, sBound := resolve(chosen.Subject, s.bound); sBound {
		if ov, oBound := resolve(chosen.Object, s.bound); oBound {
			if s.e.g.HasFact(sv.Entity, chosen.Predicate, ov) &&
				(chosen.Object.Var == "" || ov.Equal(ov)) {
				s.solve(idx + 1)
			}
			return
		}
	}

	for _, t := range s.e.expand(chosen, s.bound) {
		// A clause binds at most two variables; track them in a fixed
		// array so each match costs no bookkeeping allocations.
		var added [2]string
		n := 0
		ok := s.bindVar(chosen.Subject.Var, kg.EntityValue(t.Subject), &added, &n) &&
			s.bindVar(chosen.Object.Var, t.Object, &added, &n)
		if ok {
			s.solve(idx + 1)
		}
		for i := 0; i < n; i++ {
			delete(s.bound, added[i])
		}
	}
}

// bindVar extends the partial binding with name=val, reporting false on a
// conflict with an existing binding (Equal semantics, matching the join).
// Newly bound names are recorded in added for rollback.
func (s *solver) bindVar(name string, val kg.Value, added *[2]string, n *int) bool {
	if name == "" {
		return true
	}
	if existing, has := s.bound[name]; has {
		return existing.Equal(val)
	}
	s.bound[name] = val
	added[*n] = name
	*n++
	return true
}

// resolve substitutes the binding into a term, returning the concrete
// value and whether the term is now constant.
func resolve(t Term, bound Binding) (kg.Value, bool) {
	if t.Var == "" {
		return t.Const, true
	}
	v, ok := bound[t.Var]
	return v, ok
}

// estimate approximates how many triples expanding the clause would
// enumerate under the binding. Every arm is a counter lookup (FactCount,
// SubjectsWithCount, PredicateFrequency) — no result slice is ever
// materialized for cost estimation, so the planner can afford to
// re-estimate at every join depth.
func (e *Engine) estimate(c Clause, bound Binding) int {
	s, sBound := resolve(c.Subject, bound)
	o, oBound := resolve(c.Object, bound)
	switch {
	case sBound && oBound:
		return 1
	case sBound:
		return e.g.FactCount(s.Entity, c.Predicate) + 1
	case oBound:
		return e.g.SubjectsWithCount(c.Predicate, o) + 1
	default:
		return e.g.PredicateFrequency(c.Predicate) + 2
	}
}

// expand enumerates the triples matching the clause under the binding.
// Bound-object clauses read one posting list from the predicate-major
// index instead of sweeping every subject shard.
func (e *Engine) expand(c Clause, bound Binding) []kg.Triple {
	s, sBound := resolve(c.Subject, bound)
	o, oBound := resolve(c.Object, bound)
	switch {
	case sBound && oBound:
		if e.g.HasFact(s.Entity, c.Predicate, o) {
			return []kg.Triple{{Subject: s.Entity, Predicate: c.Predicate, Object: o}}
		}
		return nil
	case sBound:
		return e.g.Facts(s.Entity, c.Predicate)
	case oBound:
		// The count is only a capacity hint: the streaming read below is
		// the single consistent enumeration (a writer may land between
		// the two stripe acquisitions, so never truncate at the hint).
		out := make([]kg.Triple, 0, e.g.SubjectsWithCount(c.Predicate, o))
		e.g.SubjectsWithFunc(c.Predicate, o, func(sub kg.EntityID) bool {
			out = append(out, kg.Triple{Subject: sub, Predicate: c.Predicate, Object: o})
			return true
		})
		if len(out) == 0 {
			return nil
		}
		return out
	default:
		return e.Query(Pattern{Predicate: P(c.Predicate)})
	}
}
