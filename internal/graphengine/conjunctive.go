package graphengine

import (
	"fmt"
	"sort"

	"saga/internal/kg"
)

// Conjunctive queries over the graph: the query shape behind the paper's
// §1 example ("movies directed by Benicio Del Toro" = ?m with
// (?m, directedBy, delToro) ∧ (?m, type, Movie)). A query is a set of
// clauses over variables and constants; evaluation is a selectivity-
// ordered nested-loop join with binding propagation, which is how the
// Saga graph engine's retrieval path behaves for small conjunctive
// patterns.

// Term is one position of a clause: either a variable (Var != "") or a
// constant. Subject terms must be entities; object terms may be any
// value.
type Term struct {
	// Var names a variable ("?m"); empty means the term is a constant.
	Var string
	// Const is the constant value (entity or literal) when Var is empty.
	Const kg.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v kg.Value) Term { return Term{Const: v} }

// CE returns a constant entity term.
func CE(id kg.EntityID) Term { return Term{Const: kg.EntityValue(id)} }

// Clause is one triple pattern of a conjunctive query. The predicate is
// always constant (variable predicates explode the search space and the
// platform's use cases never need them).
type Clause struct {
	Subject   Term
	Predicate kg.PredicateID
	Object    Term
}

// Binding maps variable names to values.
type Binding map[string]kg.Value

// QueryConjunctive evaluates the conjunction and returns all satisfying
// bindings. Duplicate bindings are collapsed. The result order is
// deterministic (sorted by rendered binding).
func (e *Engine) QueryConjunctive(clauses []Clause) ([]Binding, error) {
	for i, c := range clauses {
		if c.Subject.Var == "" && !c.Subject.Const.IsEntity() {
			return nil, fmt.Errorf("graphengine: clause %d: constant subject must be an entity", i)
		}
		if c.Predicate == kg.NoPredicate {
			return nil, fmt.Errorf("graphengine: clause %d: predicate required", i)
		}
	}
	results := make(map[string]Binding)
	e.solve(clauses, Binding{}, results)
	out := make([]Binding, 0, len(results))
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out, nil
}

// solve recursively picks the most selective unresolved clause under the
// current binding, enumerates its matches, and recurses.
func (e *Engine) solve(clauses []Clause, bound Binding, results map[string]Binding) {
	if len(clauses) == 0 {
		results[renderBinding(bound)] = cloneBinding(bound)
		return
	}
	// Pick the clause with the smallest estimated extension.
	bestIdx := 0
	bestCost := int(^uint(0) >> 1)
	for i, c := range clauses {
		cost := e.estimate(c, bound)
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	chosen := clauses[bestIdx]
	rest := make([]Clause, 0, len(clauses)-1)
	rest = append(rest, clauses[:bestIdx]...)
	rest = append(rest, clauses[bestIdx+1:]...)

	for _, t := range e.expand(chosen, bound) {
		next := bound
		var added []string
		ok := true
		bindTerm := func(term Term, val kg.Value) {
			if !ok || term.Var == "" {
				return
			}
			if existing, has := next[term.Var]; has {
				if !existing.Equal(val) {
					ok = false
				}
				return
			}
			next[term.Var] = val
			added = append(added, term.Var)
		}
		bindTerm(chosen.Subject, kg.EntityValue(t.Subject))
		bindTerm(chosen.Object, t.Object)
		if ok {
			e.solve(rest, next, results)
		}
		for _, v := range added {
			delete(next, v)
		}
	}
}

// resolve substitutes the binding into a term, returning the concrete
// value and whether the term is now constant.
func resolve(t Term, bound Binding) (kg.Value, bool) {
	if t.Var == "" {
		return t.Const, true
	}
	v, ok := bound[t.Var]
	return v, ok
}

// estimate approximates how many triples expanding the clause would
// enumerate under the binding.
func (e *Engine) estimate(c Clause, bound Binding) int {
	s, sBound := resolve(c.Subject, bound)
	o, oBound := resolve(c.Object, bound)
	switch {
	case sBound && oBound:
		return 1
	case sBound:
		return len(e.g.Facts(s.Entity, c.Predicate)) + 1
	case oBound:
		return len(e.g.SubjectsWith(c.Predicate, o)) + 1
	default:
		return e.g.PredicateFrequency(c.Predicate) + 2
	}
}

// expand enumerates the triples matching the clause under the binding.
func (e *Engine) expand(c Clause, bound Binding) []kg.Triple {
	s, sBound := resolve(c.Subject, bound)
	o, oBound := resolve(c.Object, bound)
	switch {
	case sBound && oBound:
		if e.g.HasFact(s.Entity, c.Predicate, o) {
			return []kg.Triple{{Subject: s.Entity, Predicate: c.Predicate, Object: o}}
		}
		return nil
	case sBound:
		return e.g.Facts(s.Entity, c.Predicate)
	case oBound:
		subs := e.g.SubjectsWith(c.Predicate, o)
		out := make([]kg.Triple, 0, len(subs))
		for _, sub := range subs {
			out = append(out, kg.Triple{Subject: sub, Predicate: c.Predicate, Object: o})
		}
		return out
	default:
		return e.Query(Pattern{Predicate: P(c.Predicate)})
	}
}

func cloneBinding(b Binding) Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// renderBinding produces a canonical string for dedup and ordering.
func renderBinding(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + b[k].Key() + ";"
	}
	return s
}
