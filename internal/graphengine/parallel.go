package graphengine

import (
	"slices"
	"sync"

	"saga/internal/kg"
)

// Parallel plan execution. The first plan step's candidate list is
// partitioned into units of parallelUnitSize; K workers claim units and
// run the remaining join independently, collecting raw rows; the merge
// (on the consumer's goroutine) waits for units in production order and
// applies the global dedup, cursor skip, and limit there — so the output
// stream, including cursors and the dedup set, is byte-identical to the
// sequential executor for every K. Once the limit fills (or the consumer
// breaks), the merge closes the stop channel: the producer quits between
// sends and workers between units/candidates, bounding wasted work to
// the units in flight.
//
// Workers never dedup or count rows themselves — those are global
// properties of the stream order, which only the merge point sees.

// parallelUnitSize is how many first-step candidates one work unit
// carries. Small enough that K workers stay busy on modest candidate
// lists, large enough that per-unit channel and allocation overhead
// stays amortized.
const parallelUnitSize = 128

// parallelRow is one complete binding a worker derived: a detached copy
// plus its encoded key tuple (computed only when the merge needs it for
// dedup or cursor replay).
type parallelRow struct {
	b   Binding
	key []byte
}

// parallelUnit is one slice of the first step's candidates, claimed by a
// worker, with the derived rows published before done closes.
type parallelUnit struct {
	cands []kg.Triple
	rows  []parallelRow
	err   error
	done  chan struct{}
}

// parallelizable reports whether the plan has a first step worth
// partitioning. A fully resolved first step has exactly one candidate;
// an empty plan yields the single empty binding — both run sequential.
func parallelizable(p *Plan) bool {
	return len(p.steps) > 0 && p.steps[0].Path != PathHasFact
}

// runParallel executes ex's plan with the given worker count, leaving
// ex.err set exactly as the sequential path would on cancellation.
func runParallel(ex *executor, workers int) {
	step0 := ex.plan.steps[0]
	c0 := ex.clauses[step0.Input]
	keyed := ex.dedup || ex.skipping

	stopCh := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopCh) }) }
	defer stop()

	orderCh := make(chan *parallelUnit, workers*2)
	unitCh := make(chan *parallelUnit, workers*2)

	go func() {
		defer close(orderCh)
		defer close(unitCh)
		produceUnits(ex, c0, step0.Path, func(u *parallelUnit) bool {
			// orderCh first: the merge must see every unit a worker can
			// claim, in production order.
			select {
			case orderCh <- u:
			case <-stopCh:
				return false
			}
			select {
			case unitCh <- u:
			case <-stopCh:
				return false
			}
			return true
		})
	}()

	for i := 0; i < workers; i++ {
		go parallelWorker(ex, c0, keyed, stopCh, unitCh)
	}

	// Merge in production order. After an early exit the loop keeps
	// draining orderCh without waiting on units, so the producer
	// unblocks, notices the stop, and closes the channels.
	stopped := false
	for u := range orderCh {
		if stopped {
			continue
		}
		<-u.done
		if u.err != nil {
			ex.err = u.err
			stop()
			stopped = true
			continue
		}
		for _, r := range u.rows {
			if !ex.mergeRow(r) {
				stop()
				stopped = true
				break
			}
		}
	}
}

// produceUnits partitions the first step's candidates and hands each
// unit to send, in stream order. A chunked first step (bound-object
// clause with dedup on) maps each posting slab to one unit without ever
// materializing the full candidate list; other paths expand buffered and
// split.
func produceUnits(ex *executor, c0 Clause, path AccessPath, send func(*parallelUnit) bool) {
	if path == PathPosting && ex.chunked {
		ov, _ := resolve(c0.Object, ex.bound)
		ex.g.SubjectsWithChunked(c0.Predicate, ov, parallelUnitSize, func(chunk []kg.EntityID, restarted bool) bool {
			cands := make([]kg.Triple, len(chunk))
			for i, sub := range chunk {
				cands[i] = kg.Triple{Subject: sub, Predicate: c0.Predicate, Object: ov}
			}
			return send(&parallelUnit{cands: cands, done: make(chan struct{})})
		})
		return
	}
	buf := expandStep(ex.g, c0, path, ex.bound, nil)
	for start := 0; start < len(buf); start += parallelUnitSize {
		end := min(start+parallelUnitSize, len(buf))
		if !send(&parallelUnit{cands: buf[start:end], done: make(chan struct{})}) {
			return
		}
	}
}

// parallelWorker claims units and runs the remaining join (plan steps
// after the first) for each candidate, publishing raw rows in DFS order.
// The worker executor carries no dedup/cursor/limit state — sink mode
// collects every derivation and the merge filters globally.
func parallelWorker(ex *executor, c0 Clause, keyed bool, stopCh chan struct{}, unitCh chan *parallelUnit) {
	w := &executor{
		g:       ex.g,
		plan:    ex.plan,
		clauses: ex.clauses,
		bound:   make(Binding, len(ex.plan.vars)),
		bufs:    make([][]kg.Triple, len(ex.plan.steps)),
		keys:    make([]kg.ValueKey, len(ex.plan.vars)),
		chunked: ex.chunked,
		ctx:     ex.ctx,
		keyed:   keyed,
		halt: func() bool {
			select {
			case <-stopCh:
				return true
			default:
				return false
			}
		},
	}
	for {
		var u *parallelUnit
		var ok bool
		select {
		case u, ok = <-unitCh:
			if !ok {
				return
			}
		case <-stopCh:
			return
		}
		w.sink = func(b Binding, key []byte) bool {
			r := parallelRow{b: b}
			if keyed {
				r.key = slices.Clone(key)
			}
			u.rows = append(u.rows, r)
			return true
		}
		for _, t := range u.cands {
			if !w.candidate(0, c0, t) {
				break
			}
		}
		if w.err != nil {
			u.err = w.err
			w.err = nil
		}
		close(u.done)
	}
}
