package graphengine

import (
	"iter"
	"slices"

	"saga/internal/kg"
)

// As-of read overlay. An Overlay joins an immutable base graph (a graph
// restored from a retained checkpoint) with the mutation suffix between
// the checkpoint's watermark and the requested as-of watermark, without
// ever applying the suffix to the base — so one cached base serves every
// as-of read above its checkpoint, and building a point-in-time view
// costs O(suffix), not O(graph).
//
// The overlay implements the conjunctive solver's read surface
// (conjGraph) with the exact semantics a live graph would have at the
// as-of watermark: counts are base counts plus exact deltas (so the
// planner picks the same plan it would against the live graph), and
// enumeration order matches live construction order — base entries in
// the base's index order with suffix-retracted entries skipped (live
// retraction splices preserve relative order), suffix-added entries
// appended in mutation order (live assertion appends). A query streamed
// through the overlay is therefore byte-identical to the same query
// streamed against a graph recovered from the same checkpoint and
// replayed to the as-of watermark.
//
// The base must not be mutated while the overlay is in use; wal's
// SnapshotAt bases satisfy this by construction. The overlay itself is
// immutable after NewOverlay and safe for concurrent readers.

// spKey identifies a (subject, predicate) fact list.
type spKey struct {
	S kg.EntityID
	P kg.PredicateID
}

// poKey identifies a (predicate, object) posting list.
type poKey struct {
	P kg.PredicateID
	O kg.ValueKey
}

// Overlay is a point-in-time conjunctive read surface over an immutable
// base graph plus a mutation suffix. Build one with NewOverlay.
type Overlay struct {
	base *kg.Graph

	// Base-present triples retracted by the suffix. Enumerations skip
	// them; the count maps below carry the same information aggregated
	// per fact list and posting so the planner probes stay O(1).
	removed  map[kg.TripleKey]struct{}
	remFacts map[spKey]int
	remPosts map[poKey]int

	// Suffix-added triples, per fact list and posting, in mutation
	// order (matching live assertion-append order). inAdded is their
	// identity set; a suffix retract of a suffix add splices these
	// lists order-preservingly, exactly as live retraction does.
	inAdded    map[kg.TripleKey]struct{}
	addedFacts map[spKey][]kg.Triple
	addedPosts map[poKey][]kg.EntityID

	// Net triple-count delta per predicate, for PredicateFrequency.
	predDelta map[kg.PredicateID]int
}

// NewOverlay builds the overlay for base plus the ordered mutation
// suffix. The suffix must be exactly the mutations that followed the
// base's watermark (wal.Manager.SnapshotAt returns such a pair); the
// base is retained and must not be mutated while the overlay is alive.
func NewOverlay(base *kg.Graph, muts []kg.Mutation) *Overlay {
	o := &Overlay{
		base:       base,
		removed:    make(map[kg.TripleKey]struct{}),
		remFacts:   make(map[spKey]int),
		remPosts:   make(map[poKey]int),
		inAdded:    make(map[kg.TripleKey]struct{}),
		addedFacts: make(map[spKey][]kg.Triple),
		addedPosts: make(map[poKey][]kg.EntityID),
		predDelta:  make(map[kg.PredicateID]int),
	}
	for _, mu := range muts {
		switch mu.Op {
		case kg.OpAssert:
			o.applyAssert(mu.T)
		case kg.OpRetract:
			o.applyRetract(mu.T)
		}
	}
	return o
}

func (o *Overlay) applyAssert(t kg.Triple) {
	k := t.IdentityKey()
	if _, ok := o.inAdded[k]; ok {
		return // duplicate assert of a suffix add: live no-op
	}
	if _, gone := o.removed[k]; !gone && o.base.HasFact(t.Subject, t.Predicate, t.Object) {
		return // already present in the base and not retracted: live no-op
	}
	// Not currently present: append. A re-assert of a suffix-retracted
	// base triple lands here too — it stays in removed (its original
	// index position is gone for good) and appends at the end, which is
	// where live re-assertion puts it.
	sp, po := spKey{t.Subject, t.Predicate}, poKey{t.Predicate, k.Object}
	o.inAdded[k] = struct{}{}
	o.addedFacts[sp] = append(o.addedFacts[sp], t)
	o.addedPosts[po] = append(o.addedPosts[po], t.Subject)
	o.predDelta[t.Predicate]++
}

func (o *Overlay) applyRetract(t kg.Triple) {
	k := t.IdentityKey()
	sp, po := spKey{t.Subject, t.Predicate}, poKey{t.Predicate, k.Object}
	if _, ok := o.inAdded[k]; ok {
		delete(o.inAdded, k)
		o.addedFacts[sp] = spliceTriple(o.addedFacts[sp], k)
		o.addedPosts[po] = spliceSubject(o.addedPosts[po], t.Subject)
		o.predDelta[t.Predicate]--
		return
	}
	if _, gone := o.removed[k]; gone || !o.base.HasFact(t.Subject, t.Predicate, t.Object) {
		return // not present: live no-op
	}
	o.removed[k] = struct{}{}
	o.remFacts[sp]++
	o.remPosts[po]++
	o.predDelta[t.Predicate]--
}

// spliceTriple removes the triple with the given identity, preserving
// relative order — the overlay twin of the live graph's removeTriple.
func spliceTriple(ts []kg.Triple, key kg.TripleKey) []kg.Triple {
	for i := range ts {
		if ts[i].IdentityKey() == key {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// spliceSubject removes the first occurrence of s, preserving relative
// order. A posting holds at most one entry per subject (SPO identity
// includes the subject), so first occurrence is the only occurrence.
func spliceSubject(subs []kg.EntityID, s kg.EntityID) []kg.EntityID {
	for i := range subs {
		if subs[i] == s {
			return append(subs[:i], subs[i+1:]...)
		}
	}
	return subs
}

// --- conjGraph ----------------------------------------------------------

// FactCount returns the (subj, pred) fact count at the as-of watermark.
func (o *Overlay) FactCount(subj kg.EntityID, pred kg.PredicateID) int {
	sp := spKey{subj, pred}
	return o.base.FactCount(subj, pred) - o.remFacts[sp] + len(o.addedFacts[sp])
}

// SubjectsWithCount returns the (pred, obj) posting size at the as-of
// watermark.
func (o *Overlay) SubjectsWithCount(pred kg.PredicateID, obj kg.Value) int {
	po := poKey{pred, obj.MapKey()}
	return o.base.SubjectsWithCount(pred, obj) - o.remPosts[po] + len(o.addedPosts[po])
}

// PredicateFrequency returns the predicate's triple count at the as-of
// watermark.
func (o *Overlay) PredicateFrequency(pred kg.PredicateID) int {
	return o.base.PredicateFrequency(pred) + o.predDelta[pred]
}

// HasFact reports whether the fact is asserted at the as-of watermark.
func (o *Overlay) HasFact(subj kg.EntityID, pred kg.PredicateID, obj kg.Value) bool {
	k := kg.TripleKey{Subject: subj, Predicate: pred, Object: obj.MapKey()}
	if _, ok := o.inAdded[k]; ok {
		return true
	}
	if _, gone := o.removed[k]; gone {
		return false
	}
	return o.base.HasFact(subj, pred, obj)
}

// FactsFunc streams the (subj, pred) facts in live enumeration order:
// surviving base facts in base order, then suffix-added facts in
// mutation order.
func (o *Overlay) FactsFunc(subj kg.EntityID, pred kg.PredicateID, fn func(kg.Triple) bool) {
	stopped := false
	o.base.FactsFunc(subj, pred, func(t kg.Triple) bool {
		if _, gone := o.removed[t.IdentityKey()]; gone {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, t := range o.addedFacts[spKey{subj, pred}] {
		if !fn(t) {
			return
		}
	}
}

// FactsChunked streams the (subj, pred) facts in chunks of at most
// chunkSize, in the same order as FactsFunc. The base is immutable, so
// unlike the live graph's chunked read the enumeration can never
// restart: restarted is always false.
func (o *Overlay) FactsChunked(subj kg.EntityID, pred kg.PredicateID, chunkSize int, fn func(chunk []kg.Triple, restarted bool) bool) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	buf := make([]kg.Triple, 0, chunkSize)
	stopped := false
	emit := func(t kg.Triple) bool {
		buf = append(buf, t)
		if len(buf) < chunkSize {
			return true
		}
		ok := fn(buf, false)
		buf = buf[:0]
		return ok
	}
	o.base.FactsChunked(subj, pred, chunkSize, func(chunk []kg.Triple, _ bool) bool {
		for _, t := range chunk {
			if _, gone := o.removed[t.IdentityKey()]; gone {
				continue
			}
			if !emit(t) {
				stopped = true
				return false
			}
		}
		return true
	})
	if stopped {
		return
	}
	for _, t := range o.addedFacts[spKey{subj, pred}] {
		if !emit(t) {
			return
		}
	}
	if len(buf) > 0 {
		fn(buf, false)
	}
}

// SubjectsWithFunc streams the (pred, obj) subjects in live posting
// order: surviving base subjects, then suffix-added subjects.
func (o *Overlay) SubjectsWithFunc(pred kg.PredicateID, obj kg.Value, fn func(kg.EntityID) bool) {
	key := obj.MapKey()
	stopped := false
	o.base.SubjectsWithFunc(pred, obj, func(s kg.EntityID) bool {
		if _, gone := o.removed[kg.TripleKey{Subject: s, Predicate: pred, Object: key}]; gone {
			return true
		}
		if !fn(s) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, s := range o.addedPosts[poKey{pred, key}] {
		if !fn(s) {
			return
		}
	}
}

// SubjectsWithChunked streams the (pred, obj) subjects in chunks of at
// most chunkSize, in the same order as SubjectsWithFunc. The base is
// immutable, so unlike the live graph's chunked read the enumeration
// can never restart: restarted is always false.
func (o *Overlay) SubjectsWithChunked(pred kg.PredicateID, obj kg.Value, chunkSize int, fn func(chunk []kg.EntityID, restarted bool) bool) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	key := obj.MapKey()
	buf := make([]kg.EntityID, 0, chunkSize)
	stopped := false
	emit := func(s kg.EntityID) bool {
		buf = append(buf, s)
		if len(buf) < chunkSize {
			return true
		}
		ok := fn(buf, false)
		buf = buf[:0]
		return ok
	}
	// The base's chunked read copies slabs out under its stripe lock, so
	// fn below runs lock-free, matching the live contract.
	o.base.SubjectsWithChunked(pred, obj, chunkSize, func(chunk []kg.EntityID, _ bool) bool {
		for _, s := range chunk {
			if _, gone := o.removed[kg.TripleKey{Subject: s, Predicate: pred, Object: key}]; gone {
				continue
			}
			if !emit(s) {
				stopped = true
				return false
			}
		}
		return true
	})
	if stopped {
		return
	}
	for _, s := range o.addedPosts[poKey{pred, key}] {
		if !emit(s) {
			return
		}
	}
	if len(buf) > 0 {
		fn(buf, false)
	}
}

// PredicateEntriesFunc streams every (object, subject) pair under pred
// at the as-of watermark. Like the live graph's, the order is
// unspecified (the plan executor sorts unbound expansions).
func (o *Overlay) PredicateEntriesFunc(pred kg.PredicateID, fn func(obj kg.Value, subj kg.EntityID) bool) {
	stopped := false
	o.base.PredicateEntriesFunc(pred, func(obj kg.Value, subj kg.EntityID) bool {
		if _, gone := o.removed[kg.TripleKey{Subject: subj, Predicate: pred, Object: obj.MapKey()}]; gone {
			return true
		}
		if !fn(obj, subj) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for po, subs := range o.addedPosts {
		if po.P != pred {
			continue
		}
		obj := po.O.Value()
		for _, s := range subs {
			if !fn(obj, s) {
				return
			}
		}
	}
}

// --- Query surface ------------------------------------------------------

// StreamConjunctive evaluates the conjunction against the overlay's
// point-in-time state, with the same streaming contract as
// Engine.StreamConjunctive. Planning is per call (the overlay has no
// plan cache); because the overlay's counter probes return exactly the
// live graph's counts at the as-of watermark, the planner builds the
// same plan a live query at that watermark would run, and the stream
// order matches it row for row.
func (o *Overlay) StreamConjunctive(clauses []Clause, opts QueryOptions) iter.Seq2[Binding, error] {
	return streamConjunctive(o, clauses, opts)
}

// QueryConjunctive collects the full answer set and sorts it by key
// tuple — the slice shim over StreamConjunctive, matching
// Engine.QueryConjunctive's contract.
func (o *Overlay) QueryConjunctive(clauses []Clause) ([]Binding, error) {
	var out []Binding
	for b, err := range o.StreamConjunctive(clauses, QueryOptions{}) {
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	vars := queryVars(clauses)
	type keyedBinding struct {
		b   Binding
		key []kg.ValueKey
	}
	rows := make([]keyedBinding, len(out))
	for i, b := range out {
		row := make([]kg.ValueKey, len(vars))
		for j, name := range vars {
			row[j] = b[name].MapKey()
		}
		rows[i] = keyedBinding{b: b, key: row}
	}
	slices.SortFunc(rows, func(a, b keyedBinding) int { return compareKeyRows(a.key, b.key) })
	for i, r := range rows {
		out[i] = r.b
	}
	return out, nil
}
