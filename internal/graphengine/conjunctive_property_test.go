package graphengine

import (
	"fmt"
	"testing"
	"testing/quick"

	"saga/internal/kg"
)

// Property: the selectivity-ordered join returns exactly the bindings a
// naive brute-force evaluator finds, on random small graphs and random
// two-clause queries.
func TestConjunctiveMatchesNaive(t *testing.T) {
	f := func(edges []uint16, q1, q2 uint8) bool {
		g := kg.NewGraph()
		const nEnts = 6
		ents := make([]kg.EntityID, nEnts)
		for i := range ents {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				return false
			}
			ents[i] = id
		}
		preds := make([]kg.PredicateID, 2)
		for i := range preds {
			id, err := g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return false
			}
			preds[i] = id
		}
		for _, e := range edges {
			s := ents[int(e)%nEnts]
			p := preds[int(e>>4)%2]
			o := ents[int(e>>8)%nEnts]
			if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}); err != nil {
				return false
			}
		}
		eng := New(g)
		// Query: (?x, p_{q1}, ?y) ∧ (?y, p_{q2}, ?z)
		clauses := []Clause{
			{Subject: V("x"), Predicate: preds[int(q1)%2], Object: V("y")},
			{Subject: V("y"), Predicate: preds[int(q2)%2], Object: V("z")},
		}
		got, err := eng.QueryConjunctive(clauses)
		if err != nil {
			return false
		}
		gotSet := make(map[string]bool, len(got))
		for _, b := range got {
			gotSet[b["x"].Key()+"|"+b["y"].Key()+"|"+b["z"].Key()] = true
		}
		// Naive evaluation.
		wantSet := make(map[string]bool)
		all := g.AllTriples()
		for _, t1 := range all {
			if t1.Predicate != preds[int(q1)%2] || !t1.Object.IsEntity() {
				continue
			}
			for _, t2 := range all {
				if t2.Predicate != preds[int(q2)%2] || !t2.Object.IsEntity() {
					continue
				}
				if t2.Subject != t1.Object.Entity {
					continue
				}
				wantSet[kg.EntityValue(t1.Subject).Key()+"|"+t1.Object.Key()+"|"+t2.Object.Key()] = true
			}
		}
		if len(gotSet) != len(wantSet) {
			return false
		}
		for k := range wantSet {
			if !gotSet[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConjunctiveJoin(b *testing.B) {
	g := kg.NewGraph()
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	award, _ := g.AddPredicate(kg.Predicate{Name: "award"})
	team, _ := g.AddEntity(kg.Entity{Key: "team"})
	prize, _ := g.AddEntity(kg.Entity{Key: "prize"})
	for i := 0; i < 500; i++ {
		p, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("p%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Assert(kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(team)}); err != nil {
			b.Fatal(err)
		}
		if i%3 == 0 {
			if err := g.Assert(kg.Triple{Subject: p, Predicate: award, Object: kg.EntityValue(prize)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	eng := New(g)
	clauses := []Clause{
		{Subject: V("p"), Predicate: member, Object: CE(team)},
		{Subject: V("p"), Predicate: award, Object: CE(prize)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryConjunctive(clauses); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPPR(b *testing.B) {
	g := kg.NewGraph()
	p, _ := g.AddPredicate(kg.Predicate{Name: "link"})
	const n = 300
	ids := make([]kg.EntityID, n)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("n%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= 4; j++ {
			if err := g.Assert(kg.Triple{Subject: ids[i], Predicate: p, Object: kg.EntityValue(ids[(i+j*7)%n])}); err != nil {
				b.Fatal(err)
			}
		}
	}
	eng := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.PersonalizedPageRank(ids[i%n], 0.15, 10)
	}
}
