package graphengine

import (
	"fmt"
	"testing"
	"time"

	"saga/internal/kg"
)

// fakeReader is a minimal DerivedReader over a fixed fact list, for
// testing the view seam without the rules engine.
type fakeReader struct {
	preds map[kg.PredicateID]bool
	facts []kg.Triple // insertion order
}

func (f *fakeReader) IsDerived(p kg.PredicateID) bool { return f.preds[p] }

func (f *fakeReader) DerivedFactCount(s kg.EntityID, p kg.PredicateID) int {
	return len(f.DerivedFacts(s, p))
}

func (f *fakeReader) DerivedSubjectCount(p kg.PredicateID, o kg.Value) int {
	return len(f.DerivedSubjects(p, o))
}

func (f *fakeReader) DerivedFrequency(p kg.PredicateID) int { return len(f.DerivedEntries(p)) }

func (f *fakeReader) HasDerivedFact(s kg.EntityID, p kg.PredicateID, o kg.Value) bool {
	key := kg.Triple{Subject: s, Predicate: p, Object: o}.IdentityKey()
	for _, t := range f.facts {
		if t.IdentityKey() == key {
			return true
		}
	}
	return false
}

func (f *fakeReader) DerivedFacts(s kg.EntityID, p kg.PredicateID) []kg.Triple {
	var out []kg.Triple
	for _, t := range f.facts {
		if t.Subject == s && t.Predicate == p {
			out = append(out, t)
		}
	}
	return out
}

func (f *fakeReader) DerivedSubjects(p kg.PredicateID, o kg.Value) []kg.EntityID {
	key := o.MapKey()
	var out []kg.EntityID
	for _, t := range f.facts {
		if t.Predicate == p && t.Object.MapKey() == key {
			out = append(out, t.Subject)
		}
	}
	return out
}

func (f *fakeReader) DerivedEntries(p kg.PredicateID) []kg.Triple {
	var out []kg.Triple
	for _, t := range f.facts {
		if t.Predicate == p {
			out = append(out, t)
		}
	}
	return out
}

func derivedWorld(t *testing.T) (*kg.Graph, *Engine, *fakeReader, []kg.EntityID, kg.PredicateID, kg.PredicateID) {
	t.Helper()
	g := kg.NewGraph()
	e := New(g)
	ents := make([]kg.EntityID, 4)
	for i := range ents {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("d%d", i), Name: fmt.Sprintf("d%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = id
	}
	base, err := g.AddPredicate(kg.Predicate{Name: "basePred"})
	if err != nil {
		t.Fatal(err)
	}
	der, err := g.AddPredicate(kg.Predicate{Name: "derPred"})
	if err != nil {
		t.Fatal(err)
	}
	r := &fakeReader{preds: map[kg.PredicateID]bool{der: true}}
	return g, e, r, ents, base, der
}

// TestDerivedViewUnionOrder: base facts stream first in index order,
// then derived facts in reader insertion order, with base-overlapping
// derived facts skipped — the order cursors over derived predicates
// depend on.
func TestDerivedViewUnionOrder(t *testing.T) {
	g, _, r, ents, _, der := derivedWorld(t)
	overlap := kg.Triple{Subject: ents[0], Predicate: der, Object: kg.IntValue(1)}
	if err := g.Assert(overlap); err != nil {
		t.Fatal(err)
	}
	if err := g.Assert(kg.Triple{Subject: ents[0], Predicate: der, Object: kg.IntValue(2)}); err != nil {
		t.Fatal(err)
	}
	r.facts = []kg.Triple{
		{Subject: ents[0], Predicate: der, Object: kg.IntValue(9)},
		overlap, // also base-asserted: must not double-stream
		{Subject: ents[0], Predicate: der, Object: kg.IntValue(7)},
	}
	v := NewDerivedView(g, r)

	var objs []int64
	v.FactsFunc(ents[0], der, func(tr kg.Triple) bool {
		objs = append(objs, tr.Object.Num)
		return true
	})
	want := []int64{1, 2, 9, 7} // base index order, then reader order, overlap skipped
	if fmt.Sprint(objs) != fmt.Sprint(want) {
		t.Fatalf("union order = %v, want %v", objs, want)
	}

	// Chunked agrees with streaming.
	objs = objs[:0]
	v.FactsChunked(ents[0], der, 2, func(chunk []kg.Triple, restarted bool) bool {
		for _, tr := range chunk {
			objs = append(objs, tr.Object.Num)
		}
		return true
	})
	if fmt.Sprint(objs) != fmt.Sprint(want) {
		t.Fatalf("chunked union order = %v, want %v", objs, want)
	}

	if !v.HasFact(ents[0], der, kg.IntValue(9)) || !v.HasFact(ents[0], der, kg.IntValue(2)) {
		t.Fatal("HasFact missed a union member")
	}
	if v.HasFact(ents[1], der, kg.IntValue(9)) {
		t.Fatal("HasFact invented a fact")
	}
	// Counts are estimates: at least the distinct size, double-counting
	// the overlap is allowed.
	if n := v.FactCount(ents[0], der); n < 4 {
		t.Fatalf("FactCount = %d, want >= 4", n)
	}
}

// TestAttachDerivedQueryTransparency: after AttachDerived, the Engine's
// conjunctive surface answers from the union; after detach, from the
// bare graph again.
func TestAttachDerivedQueryTransparency(t *testing.T) {
	g, e, r, ents, base, der := derivedWorld(t)
	if err := g.Assert(kg.Triple{Subject: ents[1], Predicate: base, Object: kg.StringValue("on")}); err != nil {
		t.Fatal(err)
	}
	r.facts = []kg.Triple{{Subject: ents[1], Predicate: der, Object: kg.EntityValue(ents[2])}}

	clauses := []Clause{
		{Subject: V("X"), Predicate: der, Object: V("Y")},
		{Subject: V("X"), Predicate: base, Object: Term{Const: kg.StringValue("on")}},
	}
	count := func() int {
		n := 0
		for _, err := range e.StreamConjunctive(clauses, QueryOptions{}) {
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
		return n
	}
	if got := count(); got != 0 {
		t.Fatalf("pre-attach rows = %d, want 0", got)
	}
	e.AttachDerived(r)
	if got := count(); got != 1 {
		t.Fatalf("attached rows = %d, want 1", got)
	}
	e.AttachDerived(nil)
	if got := count(); got != 0 {
		t.Fatalf("detached rows = %d, want 0", got)
	}
}

// TestApplyDerivedDeltasReachesSubscriptions: derived visibility changes
// flow into standing queries through the predicate-keyed dispatch, and
// subscriptions whose predicates are untouched never hear about them.
func TestApplyDerivedDeltasReachesSubscriptions(t *testing.T) {
	_, e, r, ents, base, der := derivedWorld(t)
	e.AttachDerived(r)
	sub, err := e.Subscribe([]Clause{
		{Subject: V("X"), Predicate: der, Object: V("Y")},
	}, SubscribeOptions{Coalesce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	other, err := e.Subscribe([]Clause{
		{Subject: V("X"), Predicate: base, Object: V("Y")},
	}, SubscribeOptions{Coalesce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	recv := func(s *Subscription) SubscriptionEvent {
		t.Helper()
		select {
		case ev, ok := <-s.C:
			if !ok {
				t.Fatalf("subscription closed: %v", s.Err())
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for event")
		}
		panic("unreachable")
	}
	if ev := recv(sub); !ev.Reset || len(ev.Adds) != 0 {
		t.Fatalf("snapshot = %+v, want empty Reset", ev)
	}
	if ev := recv(other); !ev.Reset {
		t.Fatalf("other snapshot = %+v", ev)
	}

	add := kg.Triple{Subject: ents[0], Predicate: der, Object: kg.IntValue(5)}
	r.facts = append(r.facts, add)
	e.ApplyDerivedDeltas([]kg.Triple{add}, nil)
	ev := recv(sub)
	if len(ev.Adds) != 1 || len(ev.Retracts) != 0 {
		t.Fatalf("delta event = %+v, want one add", ev)
	}

	r.facts = nil
	e.ApplyDerivedDeltas(nil, []kg.Triple{add})
	ev = recv(sub)
	if len(ev.Retracts) != 1 {
		t.Fatalf("delta event = %+v, want one retract", ev)
	}

	// The base-predicate subscription heard nothing throughout.
	select {
	case ev := <-other.C:
		t.Fatalf("untouched subscription got %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestChunkedFactsExpansion: a bound-subject clause over a long fact
// list streams through the chunked facts path (dedup on) and yields the
// same rows as the buffered path (dedup off).
func TestChunkedFactsExpansion(t *testing.T) {
	g := kg.NewGraph()
	e := New(g)
	subj, err := g.AddEntity(kg.Entity{Key: "hub", Name: "hub"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.AddPredicate(kg.Predicate{Name: "links"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 3000 // spans several postingChunkSize chunks
	for i := 0; i < total; i++ {
		if err := g.Assert(kg.Triple{Subject: subj, Predicate: p, Object: kg.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	clauses := []Clause{{Subject: Term{Const: kg.EntityValue(subj)}, Predicate: p, Object: V("Y")}}
	collect := func(opts QueryOptions) []string {
		var out []string
		for b, err := range e.StreamConjunctive(clauses, opts) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprint(BindingKey(b)))
		}
		return out
	}
	chunked := collect(QueryOptions{})               // dedup on -> chunked path
	buffered := collect(QueryOptions{NoDedup: true}) // buffered path
	if len(chunked) != total || len(buffered) != total {
		t.Fatalf("rows chunked=%d buffered=%d, want %d", len(chunked), len(buffered), total)
	}
	for i := range chunked {
		if chunked[i] != buffered[i] {
			t.Fatalf("chunked/buffered order diverged at %d", i)
		}
	}
}
