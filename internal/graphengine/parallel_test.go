package graphengine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"saga/internal/kg"
)

// streamTokens drains a stream into binding tokens, preserving order and
// failing on any error.
func streamTokens(t *testing.T, seq func(func(Binding, error) bool)) []string {
	t.Helper()
	var out []string
	for b, err := range seq {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, bindingToken(b))
	}
	return out
}

// Property: on random graphs and random two-clause queries, the parallel
// stream is byte-identical to the sequential one for every worker count —
// same rows, same order, same dedup behavior (with and without NoDedup),
// and cursor pages cut at the same rows.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	f := func(edges []uint16, q1, q2 uint8) bool {
		g := kg.NewGraph()
		const nEnts = 6
		ents := make([]kg.EntityID, nEnts)
		for i := range ents {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				return false
			}
			ents[i] = id
		}
		preds := make([]kg.PredicateID, 2)
		for i := range preds {
			id, err := g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return false
			}
			preds[i] = id
		}
		for _, e := range edges {
			s := ents[int(e)%nEnts]
			p := preds[int(e>>4)%2]
			o := ents[int(e>>8)%nEnts]
			if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}); err != nil {
				return false
			}
		}
		clauses := []Clause{
			{Subject: V("x"), Predicate: preds[int(q1)%2], Object: V("y")},
			{Subject: V("y"), Predicate: preds[int(q2)%2], Object: V("z")},
		}

		collect := func(opts QueryOptions) ([]string, bool) {
			var out []string
			for b, err := range streamConjunctive(g, clauses, opts) {
				if err != nil {
					return nil, false
				}
				out = append(out, bindingToken(b))
			}
			return out, true
		}
		equal := func(a, b []string) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}

		for _, noDedup := range []bool{false, true} {
			seq, ok := collect(QueryOptions{NoDedup: noDedup})
			if !ok {
				return false
			}
			for _, workers := range []int{2, 3, 8} {
				par, ok := collect(QueryOptions{NoDedup: noDedup, Parallelism: workers})
				if !ok || !equal(seq, par) {
					return false
				}
			}
			// Limited parallel stream is the same prefix.
			if len(seq) > 1 {
				par, ok := collect(QueryOptions{NoDedup: noDedup, Parallelism: 4, Limit: len(seq) - 1})
				if !ok || !equal(seq[:len(seq)-1], par) {
					return false
				}
			}
		}

		// Parallel cursor pagination walks the exact sequential sequence.
		seq, ok := collect(QueryOptions{})
		if !ok {
			return false
		}
		var walked []string
		var cursor []kg.ValueKey
		for {
			n := 0
			var last Binding
			for b, err := range streamConjunctive(g, clauses, QueryOptions{Limit: 2, Cursor: cursor, Parallelism: 3}) {
				if err != nil {
					return false
				}
				walked = append(walked, bindingToken(b))
				last = b
				n++
			}
			if n < 2 {
				break
			}
			cursor = BindingKey(last)
		}
		return equal(seq, walked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Parallel edge cases that bypass the worker pool: an empty query yields
// the single empty binding, and a fully constant first step falls back
// to the sequential path — both regardless of the requested parallelism.
func TestParallelFallbacks(t *testing.T) {
	g, clauses := streamFixture(t, 4)
	rows := collectStream(t, streamConjunctive(g, nil, QueryOptions{Parallelism: 8}))
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("empty query = %v, want one empty binding", rows)
	}

	member := clauses[0].Predicate
	team := clauses[0].Object
	subj := g.SubjectsWith(member, team.Const)[0]
	constant := []Clause{{Subject: CE(subj), Predicate: member, Object: team}}
	rows = collectStream(t, streamConjunctive(g, constant, QueryOptions{Parallelism: 8}))
	if len(rows) != 1 {
		t.Fatalf("constant query = %d rows, want 1", len(rows))
	}
}

// raceCountingGraph counts membership probes with atomics so parallel
// workers can share it under -race.
type raceCountingGraph struct {
	*kg.Graph
	hasFact atomic.Int64
}

func (c *raceCountingGraph) HasFact(s kg.EntityID, p kg.PredicateID, o kg.Value) bool {
	c.hasFact.Add(1)
	return c.Graph.HasFact(s, p, o)
}

// Once the limit fills, workers must stop: a limit-3 parallel solve over
// a huge candidate list probes a bounded number of candidates (the units
// in flight when the merge stopped), not the whole list.
func TestParallelCancellationAfterLimit(t *testing.T) {
	const nMembers = 20000
	g, clauses := streamFixture(t, nMembers)
	cg := &raceCountingGraph{Graph: g}

	rows := 0
	for _, err := range streamConjunctive(cg, clauses, QueryOptions{Limit: 3, Parallelism: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != 3 {
		t.Fatalf("limited parallel solve = %d rows, want 3", rows)
	}
	// Workers exit between units once the stop channel closes; give any
	// stragglers a moment to finish their in-hand unit, then check the
	// probe count stopped far short of the candidate list.
	time.Sleep(100 * time.Millisecond)
	if n := cg.hasFact.Load(); n > nMembers/2 {
		t.Fatalf("workers probed %d of %d candidates after a limit-3 solve — cancellation is not propagating", n, nMembers)
	}
}

// Context cancellation mid-solve surfaces as the stream's final error in
// parallel mode, exactly as in sequential mode.
func TestParallelContextCancel(t *testing.T) {
	const nMembers = 20000
	g, clauses := streamFixture(t, nMembers)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rows := 0
	var finalErr error
	for _, err := range streamConjunctive(g, clauses, QueryOptions{Parallelism: 4, Context: ctx}) {
		if err != nil {
			finalErr = err
			break
		}
		rows++
		if rows == 1 {
			cancel()
		}
	}
	if rows == nMembers && finalErr == nil {
		t.Fatal("cancelled parallel solve ran to completion")
	}
	if finalErr != nil && !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final error = %v, want context.Canceled", finalErr)
	}
	if finalErr == nil {
		t.Fatalf("no error surfaced after cancellation (%d rows)", rows)
	}
}

// Under a concurrent writer on a disjoint predicate, parallel and
// sequential streams over the untouched predicates stay identical —
// the determinism property the merge preserves while the writer
// exercises the same stripe locks and buffered write path. Run with
// -race to pin the synchronization.
func TestParallelDeterminismUnderConcurrentWriter(t *testing.T) {
	const nMembers = 200
	g, clauses := streamFixture(t, nMembers)
	noise, err := g.AddPredicate(kg.Predicate{Name: "noise"})
	if err != nil {
		t.Fatal(err)
	}
	noiseSubj, err := g.AddEntity(kg.Entity{Key: "noise-subj"})
	if err != nil {
		t.Fatal(err)
	}

	stopWriter := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		i := 0
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			tr := kg.Triple{Subject: noiseSubj, Predicate: noise, Object: kg.IntValue(int64(i % 50))}
			if i%2 == 0 {
				_ = g.Assert(tr)
			} else {
				g.Retract(tr)
			}
			i++
		}
	}()

	want := streamTokens(t, streamConjunctive(g, clauses, QueryOptions{}))
	if len(want) != nMembers {
		t.Fatalf("sequential baseline = %d rows, want %d", len(want), nMembers)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	iters := 0
	for time.Now().Before(deadline) {
		for _, workers := range []int{2, 4, 8} {
			got := streamTokens(t, streamConjunctive(g, clauses, QueryOptions{Parallelism: workers}))
			if len(got) != len(want) {
				t.Fatalf("iter %d workers %d: %d rows, want %d", iters, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("iter %d workers %d: row %d diverged from sequential stream", iters, workers, i)
				}
			}
		}
		iters++
	}
	close(stopWriter)
	<-writerDone
}
