package graphengine

import (
	"testing"

	"saga/internal/kg"
	"saga/internal/workload"
)

func TestConjunctiveSingleClause(t *testing.T) {
	f := newFixture(t)
	// ?who has the MVP award.
	res, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("who"), Predicate: f.award, Object: CE(f.mvp)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("bindings = %v, want 3 award holders", res)
	}
	seen := map[kg.EntityID]bool{}
	for _, b := range res {
		v, ok := b["who"]
		if !ok || !v.IsEntity() {
			t.Fatalf("binding missing ?who: %v", b)
		}
		seen[v.Entity] = true
	}
	if !seen[f.lebron] || !seen[f.curry] || !seen[f.kobe] {
		t.Fatalf("wrong award holders: %v", seen)
	}
}

func TestConjunctiveJoin(t *testing.T) {
	f := newFixture(t)
	// ?who shares the MVP award AND has occupation basketball-player —
	// only lebron has an occupation fact to bball in the fixture.
	res, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("who"), Predicate: f.award, Object: CE(f.mvp)},
		{Subject: V("who"), Predicate: f.occ, Object: CE(f.bball)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["who"].Entity != f.lebron {
		t.Fatalf("join result = %v, want only lebron", res)
	}
}

func TestConjunctiveTwoVariables(t *testing.T) {
	f := newFixture(t)
	// ?a and ?b share an award ?x: (?a, award, ?x) ∧ (?b, award, ?x).
	res, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("a"), Predicate: f.award, Object: V("x")},
		{Subject: V("b"), Predicate: f.award, Object: V("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 holders x 3 holders = 9 ordered pairs (including a==b).
	if len(res) != 9 {
		t.Fatalf("pairs = %d, want 9", len(res))
	}
	for _, b := range res {
		if b["x"].Entity != f.mvp {
			t.Fatalf("award variable bound to %v", b["x"])
		}
	}
}

func TestConjunctiveLiteralObject(t *testing.T) {
	f := newFixture(t)
	res, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("p"), Predicate: f.height, Object: C(kg.IntValue(203))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["p"].Entity != f.lebron {
		t.Fatalf("literal-object query = %v", res)
	}
	// Bind the literal to a variable instead.
	res2, err := f.e.QueryConjunctive([]Clause{
		{Subject: CE(f.lebron), Predicate: f.height, Object: V("h")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 1 || res2[0]["h"].Num != 203 {
		t.Fatalf("height binding = %v", res2)
	}
}

func TestConjunctiveNoMatch(t *testing.T) {
	f := newFixture(t)
	res, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("who"), Predicate: f.award, Object: CE(f.mvp)},
		{Subject: V("who"), Predicate: f.occ, Object: CE(f.mvp)}, // nobody's occupation is an award
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("impossible query returned %v", res)
	}
}

func TestConjunctiveValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.QueryConjunctive([]Clause{
		{Subject: C(kg.IntValue(5)), Predicate: f.award, Object: V("x")},
	}); err == nil {
		t.Fatal("literal subject accepted")
	}
	if _, err := f.e.QueryConjunctive([]Clause{
		{Subject: V("s"), Object: V("o")},
	}); err == nil {
		t.Fatal("missing predicate accepted")
	}
}

func TestConjunctiveEmptyQuery(t *testing.T) {
	f := newFixture(t)
	res, err := f.e.QueryConjunctive(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The empty conjunction is trivially satisfied by the empty binding.
	if len(res) != 1 || len(res[0]) != 0 {
		t.Fatalf("empty query = %v", res)
	}
}

func TestConjunctiveVariableReuseAcrossPositions(t *testing.T) {
	g := kg.NewGraph()
	a, _ := g.AddEntity(kg.Entity{Key: "a", Name: "A"})
	b, _ := g.AddEntity(kg.Entity{Key: "b", Name: "B"})
	knows, _ := g.AddPredicate(kg.Predicate{Name: "knows"})
	// a knows b; b knows b (self-loop).
	if err := g.Assert(kg.Triple{Subject: a, Predicate: knows, Object: kg.EntityValue(b)}); err != nil {
		t.Fatal(err)
	}
	if err := g.Assert(kg.Triple{Subject: b, Predicate: knows, Object: kg.EntityValue(b)}); err != nil {
		t.Fatal(err)
	}
	e := New(g)
	// ?x knows ?x — only the self-loop satisfies it.
	res, err := e.QueryConjunctive([]Clause{
		{Subject: V("x"), Predicate: knows, Object: V("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["x"].Entity != b {
		t.Fatalf("self-loop query = %v", res)
	}
}

// The paper's §1 example shape on generated data: "people in team T who
// won award A" — a two-clause conjunction joined on the person variable.
func TestConjunctiveOnGeneratedWorld(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, Seed: 303})
	if err != nil {
		t.Fatal(err)
	}
	e := New(w.Graph)
	team := w.Teams[0]
	award := w.Awards[0]
	res, err := e.QueryConjunctive([]Clause{
		{Subject: V("p"), Predicate: w.Preds["memberOf"], Object: CE(team)},
		{Subject: V("p"), Predicate: w.Preds["award"], Object: CE(award)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a direct scan.
	want := 0
	for _, p := range w.ClusterMembers[0] {
		if w.Graph.HasFact(p, w.Preds["memberOf"], kg.EntityValue(team)) &&
			w.Graph.HasFact(p, w.Preds["award"], kg.EntityValue(award)) {
			want++
		}
	}
	if len(res) != want {
		t.Fatalf("conjunctive join = %d results, scan says %d", len(res), want)
	}
	if want == 0 {
		t.Fatal("degenerate fixture: nobody in team 0 has award 0")
	}
	// Every returned person must satisfy both clauses.
	for _, b := range res {
		p := b["p"].Entity
		if !w.Graph.HasFact(p, w.Preds["memberOf"], kg.EntityValue(team)) {
			t.Fatalf("binding %v violates memberOf clause", b)
		}
		if !w.Graph.HasFact(p, w.Preds["award"], kg.EntityValue(award)) {
			t.Fatalf("binding %v violates award clause", b)
		}
	}
}

func TestConjunctiveDeterministicOrder(t *testing.T) {
	f := newFixture(t)
	q := []Clause{{Subject: V("who"), Predicate: f.award, Object: CE(f.mvp)}}
	r1, err := f.e.QueryConjunctive(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.e.QueryConjunctive(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i]["who"].Entity != r2[i]["who"].Entity {
			t.Fatal("non-deterministic result order")
		}
	}
}
