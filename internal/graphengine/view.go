// Package graphengine implements the computational graph engine of the
// Saga platform (Fig 1, Fig 3 of the paper): declarative view definitions
// that filter the KG into task-specific training views, triple-pattern
// queries, graph traversals (BFS, random walks), and personalized
// PageRank. The embedding pipeline trains on views produced here ("we
// leverage a computational graph engine to generate a view of the KG by
// filtering out non-relevant facts and possible noises", §2), and the
// related-entities model consumes pre-computed traversals ("use the
// scalable graph processing capabilities of our graph engine to
// pre-compute graph traversals", §2).
//
// The query surface is iterator-first (see stream.go): Stream and
// StreamConjunctive yield matches as the planner produces them, with one
// QueryOptions struct for limit push-down, cursor pagination, provenance
// routing, timeouts, context cancellation, and parallel execution — the
// serving-path contract, where evaluation cost tracks output consumed.
// The slice-returning Query and QueryConjunctive are collect(-and-sort)
// shims over the streams.
//
// # Plan / executor contract
//
// Conjunctive evaluation is split into two layers. The planner
// (plan.go) turns a query into an immutable Plan: a clause execution
// order, one statically chosen access path per step (has_fact probe,
// subject-major facts read, predicate-major posting read, or sorted
// predicate scan), and the build-time cardinality estimates that chose
// the order. The executor (executor.go) runs a Plan depth-first with
// streaming dedup, cursor replay, and limit push-down; it never
// re-plans, so a fixed plan over a fixed graph state always streams the
// same sequence. QueryOptions.Parallelism partitions the first step's
// candidates across workers (parallel.go) with the merge preserving that
// exact sequence.
//
// Plans reference the caller's clauses by index and carry no constant
// values, so the Engine caches them by query shape — predicate IDs plus
// each position's variable-name-or-constant signature (shapeKey). A
// cached plan is revalidated against the graph's predicate counters on
// every hit: if any predicate's frequency has drifted from the plan's
// build-time snapshot by more than 64 AND more than 2x in either
// direction, the plan is invalidated and rebuilt, so a stale clause
// ordering self-corrects without any write-path hook. Cache hits skip
// planning entirely (no FactCount/SubjectsWithCount probes); see
// PlanCacheStats for the hit/miss/invalidation/eviction counters.
package graphengine

import (
	"sort"
	"sync"
	"sync/atomic"

	"saga/internal/kg"
)

// ViewDef declares a filtered view of the knowledge graph. The zero value
// keeps every triple; fields progressively restrict it.
type ViewDef struct {
	// Name identifies the view in the registry and in checkpoints.
	Name string
	// DropLiteralFacts removes literal-valued facts (heights, external IDs,
	// follower counts): the paper's canonical example of facts that are
	// "not important for learning an embedding for an entity" (§2).
	DropLiteralFacts bool
	// DropEntityFacts removes entity-valued facts (rarely useful alone,
	// but lets views isolate literal facts for e.g. extraction training).
	DropEntityFacts bool
	// MinPredicateFreq drops triples whose predicate occurs fewer than
	// this many times in the source graph (§2: rare predicates "could
	// create noise during the learning process").
	MinPredicateFreq int
	// ExcludePredicates drops specific predicates (e.g. national-library
	// IDs) regardless of frequency.
	ExcludePredicates map[kg.PredicateID]bool
	// IncludePredicates, when non-nil, keeps only these predicates.
	IncludePredicates map[kg.PredicateID]bool
	// SubjectType, when non-zero, keeps only triples whose subject has
	// (or inherits) this ontology type.
	SubjectType kg.TypeID
	// MinConfidence drops triples whose provenance confidence is lower.
	MinConfidence float64
}

// View is a materialized filtered snapshot of the graph, maintained
// incrementally from the graph's mutation log. Views are safe for
// concurrent use.
type View struct {
	def ViewDef

	mu      sync.RWMutex
	g       *kg.Graph
	triples []kg.Triple
	keys    map[kg.TripleKey]int // SPO identity -> index in triples
	// predFreq is the frequency snapshot used for MinPredicateFreq
	// decisions; it is computed at materialization time.
	predFreq map[kg.PredicateID]int
	seq      uint64 // last applied mutation sequence
}

// Def returns the view's definition.
func (v *View) Def() ViewDef { return v.def }

// Engine wraps a graph with query and view capabilities, plus a cached
// CSR adjacency snapshot (see AdjacencySnapshot) that the traversal
// methods read lock-free and that is invalidated by the graph's mutation
// watermark.
type Engine struct {
	g *kg.Graph

	mu    sync.Mutex
	views map[string]*View
	hub   *subHub // lazily created live-subscription dispatcher

	snap  snapshotCache
	plans *planCache

	// derived, when set (AttachDerived), is the combined base+derived
	// read surface conjunctive solves run against, making derived
	// predicates queryable transparently. Atomic so the hot query path
	// never takes e.mu.
	derived atomic.Pointer[DerivedView]
}

// New returns an engine over g.
func New(g *kg.Graph) *Engine {
	return &Engine{
		g:     g,
		views: make(map[string]*View),
		plans: newPlanCache(planCacheCapacity),
	}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// Materialize builds (or returns the previously built) view for def.Name.
// Views with the same name are assumed to have the same definition.
func (e *Engine) Materialize(def ViewDef) *View {
	e.mu.Lock()
	if v, ok := e.views[def.Name]; ok && def.Name != "" {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()

	v := &View{
		def:      def,
		g:        e.g,
		keys:     make(map[kg.TripleKey]int),
		predFreq: make(map[kg.PredicateID]int),
	}
	// Collect the triples and the watermark in one lock window
	// (TriplesSnapshot), tallying predicate frequencies as we go so the
	// MinPredicateFreq decision is stable for the whole materialization;
	// filtering happens outside the lock against the collected set. A
	// separate frequency pass followed by LastSeq would let a concurrent
	// writer slip a mutation between the two, permanently skewing
	// predFreq against the watermark Refresh resumes from.
	var all []kg.Triple
	v.seq = e.g.TriplesSnapshot(func(t kg.Triple) bool {
		v.predFreq[t.Predicate]++
		all = append(all, t)
		return true
	})
	for _, t := range all {
		if v.match(t) {
			v.keys[t.IdentityKey()] = len(v.triples)
			v.triples = append(v.triples, t)
		}
	}
	if def.Name != "" {
		e.mu.Lock()
		e.views[def.Name] = v
		e.mu.Unlock()
	}
	return v
}

// match applies the view predicate to one triple.
func (v *View) match(t kg.Triple) bool {
	d := &v.def
	if d.DropLiteralFacts && t.Object.IsLiteral() {
		return false
	}
	if d.DropEntityFacts && t.Object.IsEntity() {
		return false
	}
	if d.ExcludePredicates != nil && d.ExcludePredicates[t.Predicate] {
		return false
	}
	if d.IncludePredicates != nil && !d.IncludePredicates[t.Predicate] {
		return false
	}
	if d.MinPredicateFreq > 0 && v.predFreq[t.Predicate] < d.MinPredicateFreq {
		return false
	}
	if d.MinConfidence > 0 && t.Prov.Confidence < d.MinConfidence {
		return false
	}
	if d.SubjectType != kg.NoType {
		ent := v.g.Entity(t.Subject)
		if ent == nil {
			return false
		}
		ok := false
		for _, ty := range ent.Types {
			if v.g.Ontology().IsA(ty, d.SubjectType) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Refresh applies all graph mutations since the view's last refresh. This
// is the incremental maintenance path: the static knowledge asset of §5
// ("the view is automatically maintained and can be shipped to devices")
// uses exactly this mechanism.
//
// When log compaction (kg.Graph.TruncateLog — the durability layer's
// checkpoint hook) has dropped entries past the view's watermark, the
// incremental feed is incomplete and Refresh falls back to a full
// re-materialization; it then returns the rebuilt view's size.
func (v *View) Refresh() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	feed := v.g.Feed(v.seq)
	muts, complete := feed.Pull()
	if !complete {
		// Compaction passed the view's watermark: the incremental feed is
		// missing its head, so rebuild from a fresh cut (the changefeed's
		// rematerialization fallback).
		return v.rematerializeLocked()
	}
	v.seq = feed.Cursor()
	applied := 0
	for _, m := range muts {
		switch m.Op {
		case kg.OpAssert:
			v.predFreq[m.T.Predicate]++
			if !v.match(m.T) {
				continue
			}
			key := m.T.IdentityKey()
			if _, dup := v.keys[key]; dup {
				continue
			}
			v.keys[key] = len(v.triples)
			v.triples = append(v.triples, m.T)
			applied++
		case kg.OpRetract:
			v.predFreq[m.T.Predicate]--
			key := m.T.IdentityKey()
			idx, ok := v.keys[key]
			if !ok {
				continue
			}
			last := len(v.triples) - 1
			if idx != last {
				v.triples[idx] = v.triples[last]
				v.keys[v.triples[idx].IdentityKey()] = idx
			}
			v.triples = v.triples[:last]
			delete(v.keys, key)
			applied++
		}
	}
	return applied
}

// rematerializeLocked rebuilds the view from a fresh consistent cut of
// the graph — same logic as Engine.Materialize, reusing the view's
// definition. Caller holds v.mu.
func (v *View) rematerializeLocked() int {
	v.triples = nil
	v.keys = make(map[kg.TripleKey]int)
	v.predFreq = make(map[kg.PredicateID]int)
	var all []kg.Triple
	v.seq = v.g.TriplesSnapshot(func(t kg.Triple) bool {
		v.predFreq[t.Predicate]++
		all = append(all, t)
		return true
	})
	for _, t := range all {
		if v.match(t) {
			v.keys[t.IdentityKey()] = len(v.triples)
			v.triples = append(v.triples, t)
		}
	}
	return len(v.triples)
}

// Triples returns a copy of the view's triples.
func (v *View) Triples() []kg.Triple {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]kg.Triple, len(v.triples))
	copy(out, v.triples)
	return out
}

// Len returns the number of triples in the view.
func (v *View) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.triples)
}

// Contains reports whether the view holds the fact.
func (v *View) Contains(t kg.Triple) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.keys[t.IdentityKey()]
	return ok
}

// EntityIDs returns the sorted set of entity IDs appearing in the view as
// subject or entity-valued object. The embedding trainer uses this as its
// vocabulary.
func (v *View) EntityIDs() []kg.EntityID {
	v.mu.RLock()
	defer v.mu.RUnlock()
	set := make(map[kg.EntityID]struct{})
	for _, t := range v.triples {
		set[t.Subject] = struct{}{}
		if t.Object.IsEntity() {
			set[t.Object.Entity] = struct{}{}
		}
	}
	out := make([]kg.EntityID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicateIDs returns the sorted set of predicates appearing in the view.
func (v *View) PredicateIDs() []kg.PredicateID {
	v.mu.RLock()
	defer v.mu.RUnlock()
	set := make(map[kg.PredicateID]struct{})
	for _, t := range v.triples {
		set[t.Predicate] = struct{}{}
	}
	out := make([]kg.PredicateID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
