package graphengine

import (
	"encoding/binary"

	"saga/internal/kg"
)

// The planner half of the query stack. buildPlan turns a conjunctive
// query into an immutable Plan — a clause execution order with one
// statically chosen access path and one cardinality estimate per step —
// and the executor (executor.go) runs a Plan against the graph. The
// split exists so a plan can be cached (plancache.go), explained to the
// serving tier, and partitioned across workers (parallel.go), none of
// which a solver that re-plans inside its own recursion can support.
//
// A Plan deliberately does not store the query's terms: steps reference
// the caller's clauses by input index, so one cached Plan serves every
// query with the same shape (see shapeKey) regardless of which constant
// values appear. Executing a plan with a clause slice of a different
// shape is a programming error; the entry points in stream.go always
// pair a plan with the clauses it was keyed on.

// AccessPath is the statically chosen index route for one plan step.
// Which positions are resolved (constant, or a variable bound by an
// earlier step) is known once the clause order is fixed, so the path
// never depends on runtime values.
type AccessPath uint8

const (
	// PathHasFact: both positions resolved — a single membership probe,
	// no candidate enumeration.
	PathHasFact AccessPath = iota
	// PathFacts: subject resolved — enumerate its outgoing facts for the
	// predicate from the subject-major (spo) store.
	PathFacts
	// PathPosting: object resolved — read one posting list from the
	// predicate-object-major (pom) index.
	PathPosting
	// PathScan: nothing resolved — enumerate the predicate's postings
	// and sort into (subject, object key) order.
	PathScan
)

// String names the path for explain output.
func (p AccessPath) String() string {
	switch p {
	case PathHasFact:
		return "has_fact"
	case PathFacts:
		return "facts"
	case PathPosting:
		return "posting"
	case PathScan:
		return "scan"
	}
	return "unknown"
}

// PlanStep is one join level of a Plan: which input clause runs at this
// depth, through which access path, and how many candidates the planner
// expected it to enumerate when the plan was built.
type PlanStep struct {
	// Input is the clause's index in the query as the caller wrote it.
	Input int
	// Path is the statically determined access path.
	Path AccessPath
	// Estimate is the planner's candidate-count estimate for this step
	// at build time (see planCost). Estimates order the join; they are
	// not a promise about execution.
	Estimate int
}

// planFreq snapshots one predicate's global frequency at build time, the
// revalidation anchor for cached plans (see planCache).
type planFreq struct {
	pred kg.PredicateID
	freq int
}

// Plan is an immutable execution plan for one query shape. Build with
// buildPlan (or through the Engine's plan cache); run with an executor.
type Plan struct {
	steps []PlanStep
	vars  []string // sorted variable names — the key-tuple order
	shape string   // cache key this plan was built for
	freqs []planFreq
}

// Steps returns a copy of the plan's step list.
func (p *Plan) Steps() []PlanStep {
	out := make([]PlanStep, len(p.steps))
	copy(out, p.steps)
	return out
}

// Vars returns a copy of the query's variable names in sorted order —
// the canonical order of binding key tuples and cursors.
func (p *Plan) Vars() []string {
	out := make([]string, len(p.vars))
	copy(out, p.vars)
	return out
}

// StepInfo is the serializable description of one plan step, rendered
// against the query the plan was built for (the HTTP layer's "explain"
// payload).
type StepInfo struct {
	// Clause is the step's index in the submitted query.
	Clause int `json:"clause"`
	// Path names the access path: has_fact, facts, posting, or scan.
	Path string `json:"path"`
	// Estimate is the planner's build-time candidate estimate.
	Estimate int `json:"estimate"`
}

// Describe renders the plan for explain output.
func (p *Plan) Describe() []StepInfo {
	out := make([]StepInfo, len(p.steps))
	for i, st := range p.steps {
		out[i] = StepInfo{Clause: st.Input, Path: st.Path.String(), Estimate: st.Estimate}
	}
	return out
}

// shapeKey builds the cache key for a query: per clause, the predicate
// ID and a bound/unbound signature for each position. Variable names are
// part of the signature — two queries that differ only in variable
// naming would still produce different key tuples (vars sort into cursor
// order by name), so their plans are not interchangeable. Constant
// VALUES are deliberately absent: plans built for one constant are
// reused for another of the same shape, trading per-value optimality for
// a cache that actually hits (the revalidation rule bounds how stale the
// ordering can get).
func shapeKey(clauses []Clause) string {
	b := make([]byte, 0, 16*len(clauses))
	for _, c := range clauses {
		b = binary.AppendUvarint(b, uint64(c.Predicate))
		b = appendTermSig(b, c.Subject)
		b = appendTermSig(b, c.Object)
	}
	return string(b)
}

// appendTermSig appends one position's signature: 'v' + name for a
// variable, 'e' for a constant entity, 'c' for any other constant. The
// length prefix on names keeps the encoding prefix-free.
func appendTermSig(b []byte, t Term) []byte {
	if t.Var != "" {
		b = append(b, 'v')
		b = binary.AppendUvarint(b, uint64(len(t.Var)))
		return append(b, t.Var...)
	}
	if t.Const.IsEntity() {
		return append(b, 'e')
	}
	return append(b, 'c')
}

// buildPlan orders the clauses greedily by estimated candidate count and
// fixes each step's access path. At every depth the cheapest remaining
// clause wins; ties keep the earlier input index, so planning is
// deterministic. Costs for positions resolved by constants are the same
// counter lookups the dynamic solver used (estimateOn); positions
// resolved by a variable bound at an earlier step have no value to probe
// at plan time and get the varBoundCost heuristic instead.
//
// The clauses must already be validated (entity subjects, non-zero
// predicates) — the entry points in stream.go validate before planning.
func buildPlan(g conjGraph, clauses []Clause, shape string) *Plan {
	n := len(clauses)
	p := &Plan{
		steps: make([]PlanStep, 0, n),
		vars:  queryVars(clauses),
		shape: shape,
	}
	used := make([]bool, n)
	bound := make(map[string]bool, len(p.vars))
	for len(p.steps) < n {
		best, bestCost := -1, 0
		for i, c := range clauses {
			if used[i] {
				continue
			}
			if cost := planCost(g, c, bound); best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		c := clauses[best]
		p.steps = append(p.steps, PlanStep{
			Input:    best,
			Path:     pathFor(c, bound),
			Estimate: bestCost,
		})
		used[best] = true
		if c.Subject.Var != "" {
			bound[c.Subject.Var] = true
		}
		if c.Object.Var != "" {
			bound[c.Object.Var] = true
		}
	}
	p.freqs = snapshotFreqs(g, clauses)
	return p
}

// pathFor picks the access path for a clause given which variables are
// bound before it runs.
func pathFor(c Clause, bound map[string]bool) AccessPath {
	sRes := c.Subject.Var == "" || bound[c.Subject.Var]
	oRes := c.Object.Var == "" || bound[c.Object.Var]
	switch {
	case sRes && oRes:
		return PathHasFact
	case sRes:
		return PathFacts
	case oRes:
		return PathPosting
	default:
		return PathScan
	}
}

// planCost estimates how many candidates expanding the clause would
// enumerate, with only static boundness known. Constant-resolved arms
// are exact counter lookups (matching estimateOn); variable-resolved
// arms use varBoundCost.
func planCost(g conjGraph, c Clause, bound map[string]bool) int {
	sConst := c.Subject.Var == ""
	oConst := c.Object.Var == ""
	sRes := sConst || bound[c.Subject.Var]
	oRes := oConst || bound[c.Object.Var]
	switch {
	case sRes && oRes:
		return 1
	case sRes:
		if sConst {
			return g.FactCount(c.Subject.Const.Entity, c.Predicate) + 1
		}
		return varBoundCost(g, c.Predicate)
	case oRes:
		if oConst {
			return g.SubjectsWithCount(c.Predicate, c.Object.Const) + 1
		}
		return varBoundCost(g, c.Predicate)
	default:
		return g.PredicateFrequency(c.Predicate) + 2
	}
}

// varBoundCost estimates expanding a clause whose resolved position is a
// variable bound at an earlier step. The per-binding fan-out is unknown
// at plan time; assume a small constant fan-out, except that a predicate
// rarer than the assumption caps the cost at its global frequency (one
// binding cannot enumerate more facts than the predicate has).
func varBoundCost(g conjGraph, pred kg.PredicateID) int {
	const assumedFanOut = 8
	if pf := g.PredicateFrequency(pred); pf < assumedFanOut {
		return pf + 1
	}
	return assumedFanOut
}

// snapshotFreqs records the distinct predicates' global frequencies for
// cheap revalidation of a cached plan.
func snapshotFreqs(g conjGraph, clauses []Clause) []planFreq {
	freqs := make([]planFreq, 0, len(clauses))
	for _, c := range clauses {
		seen := false
		for _, f := range freqs {
			if f.pred == c.Predicate {
				seen = true
				break
			}
		}
		if !seen {
			freqs = append(freqs, planFreq{pred: c.Predicate, freq: g.PredicateFrequency(c.Predicate)})
		}
	}
	return freqs
}

// stale reports whether the graph's predicate counters have drifted far
// enough from the plan's build-time snapshot that its clause ordering
// may no longer be competitive. Both an absolute floor and a ratio must
// trip: small graphs churn ratios with a handful of writes, and large
// graphs move thousands of triples without reordering anything.
func (p *Plan) stale(g conjGraph) bool {
	for _, f := range p.freqs {
		cur := g.PredicateFrequency(f.pred)
		diff := cur - f.freq
		if diff < 0 {
			diff = -diff
		}
		if diff > 64 && (cur > 2*f.freq || f.freq > 2*cur) {
			return true
		}
	}
	return false
}
