package graphengine

import (
	"fmt"
	"math/rand"
	"testing"

	"saga/internal/kg"
)

// benchGraph builds a fixed random entity graph for snapshot benchmarks.
func benchGraph(b *testing.B, pool, edges int) (*kg.Graph, []kg.EntityID, kg.PredicateID) {
	b.Helper()
	g := kg.NewGraphWithShards(8)
	p, err := g.AddPredicate(kg.Predicate{Name: "rel"})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]kg.EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]kg.Triple, 0, edges)
	for i := 0; i < edges; i++ {
		batch = append(batch, kg.Triple{
			Subject:   ids[rng.Intn(pool)],
			Predicate: p,
			Object:    kg.EntityValue(ids[rng.Intn(pool)]),
		})
	}
	if _, err := g.AssertBatch(batch); err != nil {
		b.Fatal(err)
	}
	return g, ids, p
}

// BenchmarkSnapshotDelta measures bringing a CSR adjacency snapshot up to
// date after a mutation delta of the named fraction of the edge count:
// the incremental path (affected rows recomputed, untouched row ranges
// bulk-copied) against the from-scratch rebuild that every mutation cost
// before incremental maintenance. Both paths run against the same fixed
// post-delta graph state, so the ratio is a pure algorithm comparison.
func BenchmarkSnapshotDelta(b *testing.B) {
	const pool, edges = 4000, 40000
	for _, deltaPct := range []int{1, 5} {
		g, ids, p := benchGraph(b, pool, edges)
		prev := buildAdjacencySnapshot(g)
		rng := rand.New(rand.NewSource(11))
		n := prev.NumEdges() * deltaPct / 100
		for j := 0; j < n; j++ {
			tr := kg.Triple{Subject: ids[rng.Intn(pool)], Predicate: p, Object: kg.EntityValue(ids[rng.Intn(pool)])}
			if rng.Intn(4) == 0 {
				g.Retract(tr)
			} else {
				_ = g.Assert(tr)
			}
		}
		b.Run(fmt.Sprintf("delta=%d%%/incremental", deltaPct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				muts, _ := g.Feed(prev.Seq()).Pull()
				next := applyAdjacencyDelta(prev, muts)
				if next.Seq() != g.LastSeq() {
					b.Fatal("stale delta apply")
				}
			}
		})
		b.Run(fmt.Sprintf("delta=%d%%/rebuild", deltaPct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := buildAdjacencySnapshot(g); s.Seq() != g.LastSeq() {
					b.Fatal("stale rebuild")
				}
			}
		})
	}
}
