package graphengine

import (
	"math/rand"
	"sort"

	"saga/internal/kg"
)

// Pattern is a triple pattern with optional bindings: nil fields are
// wildcards. It is the primitive of the engine's query interface.
type Pattern struct {
	Subject   *kg.EntityID
	Predicate *kg.PredicateID
	Object    *kg.Value
}

// S binds a subject.
func S(id kg.EntityID) *kg.EntityID { return &id }

// P binds a predicate.
func P(id kg.PredicateID) *kg.PredicateID { return &id }

// O binds an object.
func O(v kg.Value) *kg.Value { return &v }

// Query returns all triples matching the pattern, choosing the cheapest
// index for the bound positions. It is the collect shim over Stream, kept
// for callers that want a detached slice; consumers that filter, join, or
// stop early should range over Stream/StreamPattern instead and pay only
// for the rows they take. Predicate-bound paths read the predicate-major
// index and carry no provenance (see QueryOptions.Provenance for the
// stored-triple route).
func (e *Engine) Query(p Pattern) []kg.Triple {
	var out []kg.Triple
	for t := range e.Stream(p) {
		out = append(out, t)
	}
	return out
}

// Neighbors returns the distinct entities adjacent to id via entity-valued
// facts in either direction, sorted ascending. It reads the cached CSR
// snapshot; the result is a fresh copy the caller may keep.
func (e *Engine) Neighbors(id kg.EntityID) []kg.EntityID {
	nbrs := e.Snapshot().Neighbors(id)
	if len(nbrs) == 0 {
		return nil
	}
	return append([]kg.EntityID(nil), nbrs...)
}

// BFS returns the shortest hop distance from source to every entity within
// maxDepth hops (undirected over entity-valued facts). The source maps to
// distance 0.
func (e *Engine) BFS(source kg.EntityID, maxDepth int) map[kg.EntityID]int {
	snap := e.Snapshot()
	dist := map[kg.EntityID]int{source: 0}
	frontier := []kg.EntityID{source}
	for depth := 1; depth <= maxDepth && len(frontier) > 0; depth++ {
		var next []kg.EntityID
		for _, u := range frontier {
			for _, v := range snap.Neighbors(u) {
				if _, seen := dist[v]; !seen {
					dist[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// PersonalizedPageRank computes approximate PPR mass from source using
// power iteration with restart probability alpha over the undirected
// entity graph. Higher mass = more related. iters controls convergence;
// 20 is plenty for ranking purposes.
//
// The iteration runs over the cached CSR snapshot — no lock acquisitions,
// map builds, or sorts per node visit. On small graphs it uses dense rank
// arrays indexed by entity ID (fastest, O(numEntities) memory); past
// pprDenseLimit entities it switches to sparse map iteration so a
// localized query on a huge graph stays O(touched neighborhood) instead
// of allocating and scanning arrays sized to the whole entity space.
func (e *Engine) PersonalizedPageRank(source kg.EntityID, alpha float64, iters int) map[kg.EntityID]float64 {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.15
	}
	snap := e.Snapshot()
	n := len(snap.offsets) - 1
	if int(source) >= n {
		// Source has no adjacency row: all mass stays at the source.
		return map[kg.EntityID]float64{source: 1}
	}
	if n <= pprDenseLimit {
		return pprDense(snap, source, alpha, iters)
	}
	return pprSparse(snap, source, alpha, iters)
}

// pprDenseLimit is the entity count above which PersonalizedPageRank
// switches from dense rank arrays to sparse maps. 1<<16 entities keeps
// the dense working set around 1 MiB (two float64 arrays).
const pprDenseLimit = 1 << 16

func pprDense(snap *AdjacencySnapshot, source kg.EntityID, alpha float64, iters int) map[kg.EntityID]float64 {
	n := len(snap.offsets) - 1
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[source] = 1
	for it := 0; it < iters; it++ {
		clear(next)
		next[source] += alpha
		for u, r := range rank {
			if r == 0 {
				continue
			}
			row := snap.nbrs[snap.offsets[u]:snap.offsets[u+1]]
			if len(row) == 0 {
				// Dangling mass restarts.
				next[source] += (1 - alpha) * r
				continue
			}
			share := (1 - alpha) * r / float64(len(row))
			for _, v := range row {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	out := make(map[kg.EntityID]float64)
	for id, r := range rank {
		if r != 0 {
			out[kg.EntityID(id)] = r
		}
	}
	return out
}

func pprSparse(snap *AdjacencySnapshot, source kg.EntityID, alpha float64, iters int) map[kg.EntityID]float64 {
	// Two maps swapped and cleared per iteration, mirroring pprDense's
	// array swap: allocating a fresh next map every iteration made the
	// sparse path's allocation cost scale with iters × frontier size.
	rank := map[kg.EntityID]float64{source: 1}
	next := make(map[kg.EntityID]float64, 8)
	for it := 0; it < iters; it++ {
		clear(next)
		next[source] += alpha
		for u, r := range rank {
			row := snap.Neighbors(u)
			if len(row) == 0 {
				next[source] += (1 - alpha) * r
				continue
			}
			share := (1 - alpha) * r / float64(len(row))
			for _, v := range row {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}

// TopRelatedByPPR returns the k highest-PPR entities excluding the source,
// as (entity, score) pairs sorted by descending score. This is the
// traversal-based related-entities baseline of experiment E3.
func (e *Engine) TopRelatedByPPR(source kg.EntityID, k int) []ScoredEntity {
	ppr := e.PersonalizedPageRank(source, 0.15, 15)
	delete(ppr, source)
	out := make([]ScoredEntity, 0, len(ppr))
	for id, s := range ppr {
		out = append(out, ScoredEntity{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ScoredEntity pairs an entity with a relevance score.
type ScoredEntity struct {
	ID    kg.EntityID
	Score float64
}

// RandomWalks generates n random walks of the given length starting at
// source over the undirected entity graph, using rng for reproducibility.
// The embedding pipeline pre-computes these traversals to build
// related-entity training samples (§2's third scalability approach).
// Steps are CSR slice lookups on the cached snapshot.
func (e *Engine) RandomWalks(source kg.EntityID, n, length int, rng *rand.Rand) [][]kg.EntityID {
	return e.Snapshot().RandomWalks(source, n, length, rng)
}

// CoOccurrence counts how often each entity co-occurs with source across
// the provided walks (excluding the source itself). The counts feed the
// related-entity embedding trainer. The per-walk dedup set is reused
// across walks rather than allocated per walk.
func CoOccurrence(walks [][]kg.EntityID) map[kg.EntityID]int {
	hint := 0
	for _, w := range walks {
		hint += len(w)
	}
	counts := make(map[kg.EntityID]int, hint/2)
	seen := make(map[kg.EntityID]bool, hint/2)
	for _, w := range walks {
		if len(w) == 0 {
			continue
		}
		src := w[0]
		clear(seen)
		for _, v := range w[1:] {
			if v != src && !seen[v] {
				counts[v]++
				seen[v] = true
			}
		}
	}
	return counts
}
