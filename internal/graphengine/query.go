package graphengine

import (
	"math/rand"
	"sort"

	"saga/internal/kg"
)

// Pattern is a triple pattern with optional bindings: nil fields are
// wildcards. It is the primitive of the engine's query interface.
type Pattern struct {
	Subject   *kg.EntityID
	Predicate *kg.PredicateID
	Object    *kg.Value
}

// S binds a subject.
func S(id kg.EntityID) *kg.EntityID { return &id }

// P binds a predicate.
func P(id kg.PredicateID) *kg.PredicateID { return &id }

// O binds an object.
func O(v kg.Value) *kg.Value { return &v }

// Query returns all triples matching the pattern, choosing the cheapest
// index for the bound positions.
func (e *Engine) Query(p Pattern) []kg.Triple {
	g := e.g
	switch {
	case p.Subject != nil && p.Predicate != nil:
		facts := g.Facts(*p.Subject, *p.Predicate)
		if p.Object == nil {
			return facts
		}
		var out []kg.Triple
		for _, t := range facts {
			if t.Object.Equal(*p.Object) {
				out = append(out, t)
			}
		}
		return out
	case p.Subject != nil:
		facts := g.Outgoing(*p.Subject)
		if p.Object == nil {
			return facts
		}
		var out []kg.Triple
		for _, t := range facts {
			if t.Object.Equal(*p.Object) {
				out = append(out, t)
			}
		}
		return out
	case p.Predicate != nil && p.Object != nil:
		subs := g.SubjectsWith(*p.Predicate, *p.Object)
		out := make([]kg.Triple, 0, len(subs))
		for _, s := range subs {
			out = append(out, kg.Triple{Subject: s, Predicate: *p.Predicate, Object: *p.Object})
		}
		return out
	case p.Object != nil && p.Object.IsEntity():
		incoming := g.Incoming(p.Object.Entity)
		if p.Predicate == nil {
			return incoming
		}
		var out []kg.Triple
		for _, t := range incoming {
			if t.Predicate == *p.Predicate {
				out = append(out, t)
			}
		}
		return out
	default:
		// Full scan with residual filters.
		var out []kg.Triple
		g.Triples(func(t kg.Triple) bool {
			if p.Predicate != nil && t.Predicate != *p.Predicate {
				return true
			}
			if p.Object != nil && !t.Object.Equal(*p.Object) {
				return true
			}
			out = append(out, t)
			return true
		})
		return out
	}
}

// Neighbors returns the distinct entities adjacent to id via entity-valued
// facts in either direction.
func (e *Engine) Neighbors(id kg.EntityID) []kg.EntityID {
	set := make(map[kg.EntityID]struct{})
	for _, t := range e.g.Outgoing(id) {
		if t.Object.IsEntity() {
			set[t.Object.Entity] = struct{}{}
		}
	}
	for _, t := range e.g.Incoming(id) {
		set[t.Subject] = struct{}{}
	}
	delete(set, id)
	out := make([]kg.EntityID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BFS returns the shortest hop distance from source to every entity within
// maxDepth hops (undirected over entity-valued facts). The source maps to
// distance 0.
func (e *Engine) BFS(source kg.EntityID, maxDepth int) map[kg.EntityID]int {
	dist := map[kg.EntityID]int{source: 0}
	frontier := []kg.EntityID{source}
	for depth := 1; depth <= maxDepth && len(frontier) > 0; depth++ {
		var next []kg.EntityID
		for _, u := range frontier {
			for _, v := range e.Neighbors(u) {
				if _, seen := dist[v]; !seen {
					dist[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// PersonalizedPageRank computes approximate PPR mass from source using
// power iteration with restart probability alpha over the undirected
// entity graph. Higher mass = more related. iters controls convergence;
// 20 is plenty for ranking purposes.
func (e *Engine) PersonalizedPageRank(source kg.EntityID, alpha float64, iters int) map[kg.EntityID]float64 {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.15
	}
	rank := map[kg.EntityID]float64{source: 1}
	for it := 0; it < iters; it++ {
		next := make(map[kg.EntityID]float64, len(rank))
		next[source] += alpha
		for u, r := range rank {
			nbrs := e.Neighbors(u)
			if len(nbrs) == 0 {
				// Dangling mass restarts.
				next[source] += (1 - alpha) * r
				continue
			}
			share := (1 - alpha) * r / float64(len(nbrs))
			for _, v := range nbrs {
				next[v] += share
			}
		}
		rank = next
	}
	return rank
}

// TopRelatedByPPR returns the k highest-PPR entities excluding the source,
// as (entity, score) pairs sorted by descending score. This is the
// traversal-based related-entities baseline of experiment E3.
func (e *Engine) TopRelatedByPPR(source kg.EntityID, k int) []ScoredEntity {
	ppr := e.PersonalizedPageRank(source, 0.15, 15)
	delete(ppr, source)
	out := make([]ScoredEntity, 0, len(ppr))
	for id, s := range ppr {
		out = append(out, ScoredEntity{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ScoredEntity pairs an entity with a relevance score.
type ScoredEntity struct {
	ID    kg.EntityID
	Score float64
}

// RandomWalks generates n random walks of the given length starting at
// source over the undirected entity graph, using rng for reproducibility.
// The embedding pipeline pre-computes these traversals to build
// related-entity training samples (§2's third scalability approach).
func (e *Engine) RandomWalks(source kg.EntityID, n, length int, rng *rand.Rand) [][]kg.EntityID {
	walks := make([][]kg.EntityID, 0, n)
	for i := 0; i < n; i++ {
		walk := make([]kg.EntityID, 0, length+1)
		walk = append(walk, source)
		cur := source
		for step := 0; step < length; step++ {
			nbrs := e.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))]
			walk = append(walk, cur)
		}
		walks = append(walks, walk)
	}
	return walks
}

// CoOccurrence counts how often each entity co-occurs with source across
// the provided walks (excluding the source itself). The counts feed the
// related-entity embedding trainer.
func CoOccurrence(walks [][]kg.EntityID) map[kg.EntityID]int {
	counts := make(map[kg.EntityID]int)
	for _, w := range walks {
		if len(w) == 0 {
			continue
		}
		src := w[0]
		seen := make(map[kg.EntityID]bool)
		for _, v := range w[1:] {
			if v != src && !seen[v] {
				counts[v]++
				seen[v] = true
			}
		}
	}
	return counts
}
