package graphengine

import (
	"fmt"
	"testing"

	"saga/internal/kg"
)

// probeCountingGraph wraps a graph to count the planner's estimate
// probes — the counter lookups buildPlan pays per shape. A plan-cache
// hit must make none of them (revalidation reads only
// PredicateFrequency).
type probeCountingGraph struct {
	*kg.Graph
	factCount int
	subjCount int
	predFreq  int
}

func (p *probeCountingGraph) FactCount(s kg.EntityID, pr kg.PredicateID) int {
	p.factCount++
	return p.Graph.FactCount(s, pr)
}

func (p *probeCountingGraph) SubjectsWithCount(pr kg.PredicateID, o kg.Value) int {
	p.subjCount++
	return p.Graph.SubjectsWithCount(pr, o)
}

func (p *probeCountingGraph) PredicateFrequency(pr kg.PredicateID) int {
	p.predFreq++
	return p.Graph.PredicateFrequency(pr)
}

func (p *probeCountingGraph) estimateProbes() int { return p.factCount + p.subjCount }

// A cached shape skips planning entirely: the second lookup of the same
// shape makes zero estimate probes (FactCount / SubjectsWithCount) and
// at most one PredicateFrequency read per distinct predicate for
// revalidation.
func TestPlanCacheHitSkipsPlanning(t *testing.T) {
	g, clauses := streamFixture(t, 32)
	cg := &probeCountingGraph{Graph: g}
	pc := newPlanCache(8)
	shape := shapeKey(clauses)

	first := pc.plan(cg, clauses, shape)
	if cg.estimateProbes() == 0 {
		t.Fatal("cold build made no estimate probes — fixture no longer exercises planning")
	}

	cg.factCount, cg.subjCount, cg.predFreq = 0, 0, 0
	second := pc.plan(cg, clauses, shape)
	if second != first {
		t.Fatal("cache returned a different plan for an unchanged shape")
	}
	if n := cg.estimateProbes(); n != 0 {
		t.Fatalf("cache hit made %d estimate probes, want 0", n)
	}
	if cg.predFreq > 2 {
		t.Fatalf("revalidation made %d PredicateFrequency reads for 2 distinct predicates", cg.predFreq)
	}

	st := pc.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 invalidations", st)
	}
}

// Shapes that differ only in constant values share a plan; shapes that
// differ in predicates, variable names, or constant placement do not.
func TestShapeKey(t *testing.T) {
	g, clauses := streamFixture(t, 4)
	_ = g
	member := clauses[0].Predicate
	award := clauses[1].Predicate
	team := clauses[0].Object.Const.Entity
	prize := clauses[1].Object.Const.Entity

	base := shapeKey(clauses)
	sameShapeOtherConst := shapeKey([]Clause{
		{Subject: V("p"), Predicate: member, Object: CE(prize)},
		{Subject: V("p"), Predicate: award, Object: CE(team)},
	})
	if base != sameShapeOtherConst {
		t.Fatal("constant values leaked into the shape key")
	}
	renamedVar := shapeKey([]Clause{
		{Subject: V("q"), Predicate: member, Object: CE(team)},
		{Subject: V("q"), Predicate: award, Object: CE(prize)},
	})
	if base == renamedVar {
		t.Fatal("variable names must be part of the shape key (they order the key tuple)")
	}
	swappedPred := shapeKey([]Clause{
		{Subject: V("p"), Predicate: award, Object: CE(team)},
		{Subject: V("p"), Predicate: member, Object: CE(prize)},
	})
	if base == swappedPred {
		t.Fatal("predicates must be part of the shape key")
	}
	literalObj := shapeKey([]Clause{
		{Subject: V("p"), Predicate: member, Object: C(kg.IntValue(7))},
		{Subject: V("p"), Predicate: award, Object: CE(prize)},
	})
	if base == literalObj {
		t.Fatal("constant kind (entity vs literal) must be part of the shape key")
	}
}

// A cached plan whose predicate counters drift past the staleness rule
// (more than 64 triples AND more than 2x) is invalidated and rebuilt;
// small drift keeps the plan.
func TestPlanCacheInvalidation(t *testing.T) {
	g, clauses := streamFixture(t, 16)
	cg := &probeCountingGraph{Graph: g}
	pc := newPlanCache(8)
	shape := shapeKey(clauses)

	first := pc.plan(cg, clauses, shape)

	// Small drift: 8 more memberOf triples — under the absolute floor.
	member := clauses[0].Predicate
	team := clauses[0].Object.Const
	addMembers := func(n int, tag string) {
		batch := make([]kg.Triple, 0, n)
		for i := 0; i < n; i++ {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("extra-%s-%d", tag, i)})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, kg.Triple{Subject: id, Predicate: member, Object: team})
		}
		if _, err := g.AssertBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	addMembers(8, "small")
	if got := pc.plan(cg, clauses, shape); got != first {
		t.Fatal("small counter drift invalidated the plan")
	}

	// Large drift: push memberOf well past 2x its build-time count.
	addMembers(256, "large")
	second := pc.plan(cg, clauses, shape)
	if second == first {
		t.Fatal("large counter drift did not invalidate the plan")
	}
	st := pc.stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (cold build + invalidation rebuild)", st.Misses)
	}
}

// The cache is bounded: at capacity, inserting a new shape evicts the
// least recently used one, which then misses again.
func TestPlanCacheLRUEviction(t *testing.T) {
	g, clauses := streamFixture(t, 4)
	member := clauses[0].Predicate
	pc := newPlanCache(2)

	mkClauses := func(varName string) []Clause {
		return []Clause{{Subject: V(varName), Predicate: member, Object: clauses[0].Object}}
	}
	shapes := make([][]Clause, 3)
	for i := range shapes {
		shapes[i] = mkClauses(fmt.Sprintf("v%d", i))
	}
	plans := make([]*Plan, 3)
	for i, cl := range shapes {
		plans[i] = pc.plan(g, cl, shapeKey(cl))
	}
	// Capacity 2: shape 0 was evicted when shape 2 landed.
	st := pc.stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and size 2", st)
	}
	if got := pc.plan(g, shapes[1], shapeKey(shapes[1])); got != plans[1] {
		t.Fatal("resident shape was rebuilt")
	}
	if got := pc.plan(g, shapes[0], shapeKey(shapes[0])); got == plans[0] {
		t.Fatal("evicted shape returned the old plan pointer without a rebuild")
	}
}

// The planner fixes access paths statically from boundness: the
// bound-object clause runs first through the posting index, then the
// second clause (its subject now bound) probes via has_fact... here both
// clauses have constant objects, so whichever runs second is fully
// resolved.
func TestPlanAccessPaths(t *testing.T) {
	g, clauses := streamFixture(t, 16)
	p := buildPlan(g, clauses, "")
	steps := p.Steps()
	if len(steps) != 2 {
		t.Fatalf("plan has %d steps, want 2", len(steps))
	}
	if steps[0].Path != PathPosting {
		t.Fatalf("first step path = %v, want posting", steps[0].Path)
	}
	if steps[1].Path != PathHasFact {
		t.Fatalf("second step path = %v, want has_fact", steps[1].Path)
	}
	desc := p.Describe()
	if desc[0].Path != "posting" || desc[1].Path != "has_fact" {
		t.Fatalf("describe paths = %v", desc)
	}
	if desc[0].Clause == desc[1].Clause {
		t.Fatal("describe reuses a clause index")
	}
	if desc[0].Estimate <= 0 {
		t.Fatalf("first step estimate = %d, want positive", desc[0].Estimate)
	}
}

// The Engine's streaming entry point goes through the plan cache:
// repeated queries of one shape hit.
func TestEngineStreamConjunctiveUsesPlanCache(t *testing.T) {
	g, clauses := streamFixture(t, 8)
	e := New(g)
	for i := 0; i < 3; i++ {
		rows := collectStream(t, e.StreamConjunctive(clauses, QueryOptions{}))
		if len(rows) != 8 {
			t.Fatalf("run %d: %d rows, want 8", i, len(rows))
		}
	}
	st := e.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss and 2 hits across 3 identical queries", st)
	}
	if _, err := e.PlanConjunctive(clauses); err != nil {
		t.Fatal(err)
	}
	if st = e.PlanCacheStats(); st.Hits != 3 {
		t.Fatalf("PlanConjunctive did not share the stream cache: %+v", st)
	}
}

// PlanConjunctive validates like the stream entry points.
func TestPlanConjunctiveValidates(t *testing.T) {
	g, clauses := streamFixture(t, 2)
	e := New(g)
	bad := []Clause{{Subject: C(kg.IntValue(3)), Predicate: clauses[0].Predicate, Object: V("o")}}
	if _, err := e.PlanConjunctive(bad); err == nil {
		t.Fatal("literal constant subject accepted")
	}
	if _, err := e.PlanConjunctive([]Clause{{Subject: V("s"), Object: V("o")}}); err == nil {
		t.Fatal("missing predicate accepted")
	}
}
