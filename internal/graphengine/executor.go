package graphengine

import (
	"context"
	"slices"

	"saga/internal/kg"
)

// The executor half of the query stack: runs an immutable Plan (plan.go)
// against the graph, depth-first in plan-step order, with streaming
// dedup, cursor replay, and limit push-down at the leaves. The executor
// never re-plans — every access-path decision was fixed at build time —
// so the same plan over the same graph state always streams the same
// sequence, which is the property cursors and the parallel merge
// (parallel.go) rely on.

// postingChunkSize is how many posting entries the executor copies per
// lock acquisition when expanding a bound-object clause through the
// chunked read path. The chunk bounds the one-slab-copy cost a small
// limit pays on a huge posting list: candidates stream through the join
// chunkSize at a time instead of materializing the whole posting first.
const postingChunkSize = 1024

// executor carries the state of one plan execution: the caller's
// clauses (steps reference them by input index), the mutable partial
// binding, per-depth expansion buffers reused across sibling nodes, and
// the streaming dedup/cursor/limit state.
//
// Two optional hooks repurpose the executor as a parallel worker
// (parallel.go): sink redirects complete bindings into a collection
// callback (bypassing dedup/cursor/limit, which the merge applies
// globally), and halt aborts the recursion when the merge has already
// stopped consuming.
type executor struct {
	g       conjGraph
	plan    *Plan
	clauses []Clause
	bound   Binding
	bufs    [][]kg.Triple // per-depth candidate scratch, reused across siblings
	keys    []kg.ValueKey // leaf key-tuple scratch
	enc     []byte        // leaf key-encoding scratch
	dedup   bool          // collapse duplicate rows (seen non-nil iff set)
	seen    map[string]struct{}
	chunked bool // expand bound-object clauses through the chunked posting read

	cursor   string // encoded cursor tuple; "" = none
	skipping bool   // still replaying rows up to and including the cursor
	limit    int    // <= 0 = unlimited
	yielded  int
	ctx      context.Context
	err      error // context error to surface after unwinding
	yield    func(Binding, error) bool

	// Worker hooks (nil in the sequential path).
	sink  func(b Binding, key []byte) bool
	keyed bool // sink wants the key tuple computed
	halt  func() bool
}

// exec evaluates plan steps[idx:] under the current binding, yielding
// complete bindings depth-first. It returns false to abort the whole
// enumeration (consumer break, limit reached, halt, or context
// cancelled).
func (e *executor) exec(idx int) bool {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			e.err = err
			return false
		}
	}
	if e.halt != nil && e.halt() {
		return false
	}
	if idx == len(e.plan.steps) {
		return e.emit()
	}
	step := e.plan.steps[idx]
	c := e.clauses[step.Input]

	// Fully resolved clause: a single membership check, no candidate
	// buffer and no bindings to roll back. The lookup is SPO identity; a
	// var-bound object then re-applies the join's Equal semantics, so a
	// NaN-valued binding is pruned here exactly as bindVar prunes it on
	// the general path.
	if step.Path == PathHasFact {
		sv, _ := resolve(c.Subject, e.bound)
		ov, _ := resolve(c.Object, e.bound)
		if e.g.HasFact(sv.Entity, c.Predicate, ov) &&
			(c.Object.Var == "" || ov.Equal(ov)) {
			return e.exec(idx + 1)
		}
		return true
	}

	// Chunked posting expansion: candidates stream through the join
	// postingChunkSize at a time, each slab copied under one stripe lock
	// acquisition with an epoch check. A concurrent slot-shifting write
	// restarts the read, which can re-deliver subjects; the leaf dedup
	// absorbs the duplicate derivations, so the path is only taken when
	// dedup is on (NoDedup streams would double-yield).
	if step.Path == PathPosting && e.chunked {
		ov, _ := resolve(c.Object, e.bound)
		ok := true
		e.g.SubjectsWithChunked(c.Predicate, ov, postingChunkSize, func(chunk []kg.EntityID, restarted bool) bool {
			for _, sub := range chunk {
				if !e.candidate(idx, c, kg.Triple{Subject: sub, Predicate: c.Predicate, Object: ov}) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}

	// Chunked facts expansion: the bound-subject twin of the posting path
	// above. Fact-list slabs are copied out under one shard lock
	// acquisition each; a concurrent retract in the shard splices lists
	// and restarts the read, which can re-deliver triples, so — like the
	// posting path — the route is only taken when the leaf dedup is on.
	if step.Path == PathFacts && e.chunked {
		sv, _ := resolve(c.Subject, e.bound)
		ok := true
		e.g.FactsChunked(sv.Entity, c.Predicate, postingChunkSize, func(chunk []kg.Triple, restarted bool) bool {
			for _, t := range chunk {
				if !e.candidate(idx, c, t) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}

	// Buffered expansion: candidates are copied out under the index locks
	// and enumerated lock-free, so the recursion (and the consumer's loop
	// body) never runs inside a graph lock.
	e.bufs[idx] = expandStep(e.g, c, step.Path, e.bound, e.bufs[idx][:0])
	for _, t := range e.bufs[idx] {
		if !e.candidate(idx, c, t) {
			return false
		}
	}
	return true
}

// candidate extends the binding with one candidate triple of step idx,
// recurses, and rolls the binding back. It returns false to abort the
// enumeration.
func (e *executor) candidate(idx int, c Clause, t kg.Triple) bool {
	// A clause binds at most two variables; track them in a fixed array
	// so each match costs no bookkeeping allocations.
	var added [2]string
	n := 0
	ok := e.bindVar(c.Subject.Var, kg.EntityValue(t.Subject), &added, &n) &&
		e.bindVar(c.Object.Var, t.Object, &added, &n)
	cont := true
	if ok {
		cont = e.exec(idx + 1)
	}
	for i := 0; i < n; i++ {
		delete(e.bound, added[i])
	}
	return cont
}

// emit handles a complete binding at a leaf. In the sequential path:
// streaming dedup on the key tuple (unless NoDedup), cursor skip, limit
// accounting, and the yield itself. In a worker (sink set), the binding
// copy and key tuple are handed to the sink; the merge applies the
// global dedup/cursor/limit in stream order.
func (e *executor) emit() bool {
	if e.sink != nil {
		if e.keyed {
			for i, name := range e.plan.vars {
				e.keys[i] = e.bound[name].MapKey()
			}
			e.enc = appendKeyTuple(e.enc[:0], e.keys)
		}
		return e.sink(e.copyBinding(), e.enc)
	}
	if e.dedup || e.skipping {
		for i, name := range e.plan.vars {
			e.keys[i] = e.bound[name].MapKey()
		}
		e.enc = appendKeyTuple(e.enc[:0], e.keys)
	}
	if e.dedup {
		if _, dup := e.seen[string(e.enc)]; dup {
			return true
		}
		e.seen[string(e.enc)] = struct{}{}
	}
	if e.skipping {
		if string(e.enc) == e.cursor {
			e.skipping = false
		}
		return true
	}
	if !e.yield(e.copyBinding(), nil) {
		return false
	}
	e.yielded++
	return e.limit <= 0 || e.yielded < e.limit
}

// mergeRow applies the leaf bookkeeping (dedup, cursor skip, limit) to a
// row a worker already derived and keyed — the merge-side twin of emit,
// byte-identical in effect because the worker computed the key with the
// same tuple encoding and the rows arrive in sequential stream order.
func (e *executor) mergeRow(r parallelRow) bool {
	if e.dedup {
		if _, dup := e.seen[string(r.key)]; dup {
			return true
		}
		e.seen[string(r.key)] = struct{}{}
	}
	if e.skipping {
		if string(r.key) == e.cursor {
			e.skipping = false
		}
		return true
	}
	if !e.yield(r.b, nil) {
		return false
	}
	e.yielded++
	return e.limit <= 0 || e.yielded < e.limit
}

// copyBinding snapshots the current partial binding restricted to the
// query's variables — the detached row handed to the consumer.
func (e *executor) copyBinding() Binding {
	b := make(Binding, len(e.plan.vars))
	for _, name := range e.plan.vars {
		b[name] = e.bound[name]
	}
	return b
}

// bindVar extends the partial binding with name=val, reporting false on a
// conflict with an existing binding (Equal semantics, matching the join).
// Newly bound names are recorded in added for rollback.
func (e *executor) bindVar(name string, val kg.Value, added *[2]string, n *int) bool {
	if name == "" {
		return true
	}
	if existing, has := e.bound[name]; has {
		return existing.Equal(val)
	}
	e.bound[name] = val
	added[*n] = name
	*n++
	return true
}

// expandStep appends the triples matching the clause through the step's
// access path to buf and returns it. Candidates are copied out under the
// index locks (one consistent read per index touched) so the caller can
// enumerate and recurse lock-free. Bound-object clauses read one posting
// list from the predicate-major index; unbound clauses enumerate the
// predicate's postings and are sorted into (subject, object key) order,
// because the underlying map iteration is the one candidate source with
// no inherent deterministic order and the stream order must be
// reproducible for cursors.
func expandStep(g conjGraph, c Clause, path AccessPath, bound Binding, buf []kg.Triple) []kg.Triple {
	switch path {
	case PathHasFact:
		s, _ := resolve(c.Subject, bound)
		o, _ := resolve(c.Object, bound)
		if g.HasFact(s.Entity, c.Predicate, o) {
			buf = append(buf, kg.Triple{Subject: s.Entity, Predicate: c.Predicate, Object: o})
		}
		return buf
	case PathFacts:
		s, _ := resolve(c.Subject, bound)
		g.FactsFunc(s.Entity, c.Predicate, func(t kg.Triple) bool {
			buf = append(buf, t)
			return true
		})
		return buf
	case PathPosting:
		o, _ := resolve(c.Object, bound)
		// The count is only a capacity hint: the streaming read below is
		// the single consistent enumeration (a writer may land between the
		// two stripe acquisitions, so never truncate at the hint).
		buf = slices.Grow(buf, g.SubjectsWithCount(c.Predicate, o))
		g.SubjectsWithFunc(c.Predicate, o, func(sub kg.EntityID) bool {
			buf = append(buf, kg.Triple{Subject: sub, Predicate: c.Predicate, Object: o})
			return true
		})
		return buf
	default: // PathScan
		start := len(buf)
		g.PredicateEntriesFunc(c.Predicate, func(obj kg.Value, subj kg.EntityID) bool {
			buf = append(buf, kg.Triple{Subject: subj, Predicate: c.Predicate, Object: obj})
			return true
		})
		ext := buf[start:]
		slices.SortFunc(ext, func(a, b kg.Triple) int {
			if a.Subject != b.Subject {
				if a.Subject < b.Subject {
					return -1
				}
				return 1
			}
			return a.Object.MapKey().Compare(b.Object.MapKey())
		})
		return buf
	}
}
