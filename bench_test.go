package repro_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"saga/internal/annotate"
	"saga/internal/embedding"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/odke"
	"saga/internal/ondevice"
	"saga/internal/vecindex"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

// The benchmark side of each experiment: where the Test measures quality
// (the paper's "who wins"), the Benchmark measures cost (the paper's
// price/performance axis). Run with:
//
//	go test -bench=. -benchmem .

// BenchmarkE1FactRanking measures fact-ranking queries per second.
func BenchmarkE1FactRanking(b *testing.B) {
	f := getFixture(b)
	occ := f.w.Preds["occupation"]
	people := f.w.People
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.svc.RankFacts(people[i%len(people)], occ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2FactVerification measures triple-scoring throughput.
func BenchmarkE2FactVerification(b *testing.B) {
	f := getFixture(b)
	n := int32(f.dataset.NumEntities())
	r := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.model.Score(int32(i)%n, r, int32(i*7)%n)
	}
}

// BenchmarkE3RelatedEntities measures related-entity queries (walk-vector
// kNN) per second.
func BenchmarkE3RelatedEntities(b *testing.B) {
	f := getFixture(b)
	people := f.w.People
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.walkSvc.RelatedEntities(people[i%len(people)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4EntityLinking measures single-document annotation latency
// for each ranking mode — the paper's modular quality/cost trade-off.
func BenchmarkE4EntityLinking(b *testing.B) {
	f := getFixture(b)
	var texts []string
	for _, d := range f.corpus {
		if d.Cluster >= 0 {
			texts = append(texts, d.Text)
		}
		if len(texts) == 50 {
			break
		}
	}
	for _, mode := range []annotate.Mode{annotate.ModeLexical, annotate.ModePopularity, annotate.ModeContextual} {
		b.Run(string(mode), func(b *testing.B) {
			a := f.annotators[mode]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = a.Annotate(texts[i%len(texts)])
			}
		})
	}
}

// BenchmarkE5TrainingThroughput measures Hogwild SGD edge throughput at
// 1, 2, and 4 workers (the paper's multi-GPU scaling axis, mapped to
// goroutines per DESIGN.md).
func BenchmarkE5TrainingThroughput(b *testing.B) {
	f := getFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := embedding.TrainConfig{
				Model: embedding.DistMult, Dim: 32, Epochs: 1,
				LearningRate: 0.08, Negatives: 2, Workers: workers, Seed: 1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := embedding.Train(f.train, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(f.train.Triples)*b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkE6AnnotationThroughput measures corpus annotation in docs/s.
func BenchmarkE6AnnotationThroughput(b *testing.B) {
	f := getFixture(b)
	a := f.annotators[annotate.ModeContextual]
	b.ResetTimer()
	var docs int
	for i := 0; i < b.N; i++ {
		pipe := annotate.NewPipeline(a, 4)
		stats := pipe.Run(f.corpus)
		docs += stats.Processed
	}
	b.ReportMetric(float64(docs)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkE6Incremental measures the incremental pass cost at several
// change rates; work should scale with the rate, not the corpus.
func BenchmarkE6Incremental(b *testing.B) {
	f := getFixture(b)
	a := f.annotators[annotate.ModeContextual]
	for _, rate := range []float64{0.05, 0.2} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := webcorpus.Generate(f.w, webcorpus.Config{NumDocs: 300, Seed: 7})
				pipe := annotate.NewPipeline(a, 4)
				pipe.Run(docs)
				rng := rand.New(rand.NewSource(int64(i)))
				webcorpus.Mutate(docs, rate, rng)
				b.StartTimer()
				pipe.Run(docs)
			}
		})
	}
}

// BenchmarkE7ODKEPipeline measures end-to-end gap-filling latency.
func BenchmarkE7ODKEPipeline(b *testing.B) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 80, NumClusters: 8, Seed: 177})
	if err != nil {
		b.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 400, InfoboxFraction: 0.6, Seed: 177})
	ann, err := annotate.New(w.Graph, annotate.Config{Mode: annotate.ModeContextual, Seed: 177})
	if err != nil {
		b.Fatal(err)
	}
	index := websearch.NewIndex(docs)
	resolver := odke.NewEntityResolver(w.Graph)
	pipe, err := odke.NewPipeline(w.Graph, index, ann,
		[]odke.Extractor{odke.NewInfoboxExtractor(w.Graph, resolver), odke.NewTextExtractor(w.Graph)},
		odke.MajorityVoteFuser{})
	if err != nil {
		b.Fatal(err)
	}
	// A rotating set of gaps (collect-only so graph state stays fixed).
	var gaps []odke.Gap
	for _, p := range w.People[:20] {
		gaps = append(gaps, odke.Gap{Subject: p, Predicate: w.Preds["memberOf"], Kind: odke.GapMissing})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap := gaps[i%len(gaps)]
		cands, _, _ := pipe.CollectCandidates(gap)
		_, _ = odke.Fuse(odke.MajorityVoteFuser{}, cands)
	}
}

// BenchmarkE8PersonalKG measures personal-KG construction in records/s
// under a tight and a loose memory budget.
func BenchmarkE8PersonalKG(b *testing.B) {
	records, _ := ondevice.GenerateDeviceData(ondevice.DeviceDataConfig{NumPersons: 40, RecordsPerPerson: 4, Seed: 188})
	for _, budget := range []int{1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				builder, err := ondevice.NewBuilder(b.TempDir(), budget)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				processed, err := builder.ProcessBatch(records, 0)
				if err != nil {
					b.Fatal(err)
				}
				n += processed
				b.StopTimer()
				builder.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkE9Sync measures a full all-to-all sync round across three
// devices.
func BenchmarkE9Sync(b *testing.B) {
	records, _ := ondevice.GenerateDeviceData(ondevice.DeviceDataConfig{NumPersons: 20, RecordsPerPerson: 4, Seed: 199})
	prefs := func() map[ondevice.SourceKind]bool {
		return map[ondevice.SourceKind]bool{
			ondevice.SourceContacts: true, ondevice.SourceMessages: true, ondevice.SourceCalendar: true,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		base := b.TempDir()
		var devices []*ondevice.Device
		for _, name := range []string{"phone", "laptop", "watch"} {
			d, err := ondevice.NewDevice(base, name, 1, prefs(), 0)
			if err != nil {
				b.Fatal(err)
			}
			devices = append(devices, d)
		}
		devices[0].AddLocalRecords(records)
		sg := &ondevice.SyncGroup{Devices: devices}
		b.StartTimer()
		if err := sg.SyncRound(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, d := range devices {
			d.Close()
		}
		b.StartTimer()
	}
}

// BenchmarkE10Enrichment measures the three enrichment paths' per-query
// cost: asset lookup, piggyback interaction, and PIR fetch.
func BenchmarkE10Enrichment(b *testing.B) {
	f := getFixture(b)
	keys := make([]string, len(f.w.People))
	for i, p := range f.w.People {
		keys[i] = f.w.Graph.Entity(p).Key
	}
	b.Run("static-asset", func(b *testing.B) {
		asset, err := ondevice.BuildStaticAsset(f.w.Graph, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			asset.Lookup(keys[i%len(keys)])
		}
	})
	b.Run("piggyback", func(b *testing.B) {
		cache := ondevice.NewPiggybackCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.ServerInteraction(f.w.Graph, keys[i%len(keys)])
		}
	})
	b.Run("pir", func(b *testing.B) {
		pir := ondevice.NewPIRServer(f.w.Graph)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pir.Fetch(keys[i%len(keys)])
		}
		b.ReportMetric(float64(pir.CostUnits)/float64(b.N), "rows/query")
	})
}

// BenchmarkE11ANNPricePerf measures kNN latency across nprobe settings
// and against the exact flat index, with recall reported per setting.
func BenchmarkE11ANNPricePerf(b *testing.B) {
	rng := rand.New(rand.NewSource(211))
	const n, dim = 5000, 32
	ids := make([]uint64, n)
	vecs := make([]vecindex.Vector, n)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i + 1)
		v := make(vecindex.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = vecindex.Normalize(v)
	}
	flat := vecindex.NewFlat()
	for i := range ids {
		if err := flat.Add(ids[i], vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
	ivf, err := vecindex.BuildIVF(ids, vecs, vecindex.IVFOptions{NList: 64, Seed: 211})
	if err != nil {
		b.Fatal(err)
	}
	recallOf := func(nprobe int) float64 {
		var hit, total int
		for q := 0; q < 30; q++ {
			query := vecs[(q*31)%n]
			want := flat.Search(query, 10)
			got := ivf.SearchNProbe(query, 10, nprobe)
			gotSet := make(map[uint64]bool, len(got))
			for _, r := range got {
				gotSet[r.ID] = true
			}
			for _, r := range want {
				total++
				if gotSet[r.ID] {
					hit++
				}
			}
		}
		return float64(hit) / float64(total)
	}
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = flat.Search(vecs[i%n], 10)
		}
		b.ReportMetric(1.0, "recall@10")
	})
	for _, nprobe := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ivf-nprobe=%d", nprobe), func(b *testing.B) {
			rec := recallOf(nprobe)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ivf.SearchNProbe(vecs[i%n], 10, nprobe)
			}
			b.ReportMetric(rec, "recall@10")
		})
	}
}

// BenchmarkE12DiskTraining compares one epoch of in-memory vs
// disk-streamed partition training.
func BenchmarkE12DiskTraining(b *testing.B) {
	f := getFixture(b)
	cfg := embedding.TrainConfig{
		Model: embedding.DistMult, Dim: 32, Epochs: 1,
		LearningRate: 0.08, Negatives: 2, Workers: 2, Seed: 1,
	}
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := embedding.Train(f.train, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disk-partitioned", func(b *testing.B) {
		dir := b.TempDir()
		paths, err := embedding.WritePartitions(f.train, dir, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := embedding.TrainFromDisk(f.train, paths, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13Conjunctive measures the paper's §1 retrieval shape — a
// two-clause bound-object conjunctive query ("people in team T who won
// award A") — on a skewed 64-shard graph: a hot follows predicate and a
// few hot teams dominate the postings while the queried (memberOf, team)
// pair is selective. The "pom" case runs the planner over the
// predicate-major index (counter estimates + one posting-list read); the
// "sweep" case replays the pre-index strategy, where every selectivity
// estimate and the expansion sweep all 64 shards via SubjectsWithSweep.
// Since PR 5 shrank the per-shard pos postings to counts, the sweep
// recovers subjects from bounded spo scans — it is the cost model of a
// graph with no merged reverse index at all, and it is excluded from the
// benchcmp gate as a deliberately-degraded baseline foil (see
// scripts/benchcmp).
func BenchmarkE13Conjunctive(b *testing.B) {
	g := kg.NewGraphWithShards(64)
	add := func(key string) kg.EntityID {
		id, err := g.AddEntity(kg.Entity{Key: key})
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	awardP, _ := g.AddPredicate(kg.Predicate{Name: "award"})
	follows, _ := g.AddPredicate(kg.Predicate{Name: "follows"})
	const nPeople = 8192
	const nTeams = 64
	teams := make([]kg.EntityID, nTeams)
	for i := range teams {
		teams[i] = add(fmt.Sprintf("team%d", i))
	}
	prize := add("prize")
	people := make([]kg.EntityID, nPeople)
	for i := range people {
		people[i] = add(fmt.Sprintf("p%d", i))
	}
	batch := make([]kg.Triple, 0, nPeople*6)
	for i, p := range people {
		// Skewed membership: 15 of every 16 people pile onto the 8 hot
		// teams; the rest spread across all 64 teams, leaving the queried
		// cold team (nTeams-1) with 8 members.
		ti := i % 8
		if i%16 == 15 {
			ti = (i / 16) % nTeams
		}
		batch = append(batch, kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(teams[ti])})
		if i%7 == 0 {
			batch = append(batch, kg.Triple{Subject: p, Predicate: awardP, Object: kg.EntityValue(prize)})
		}
		for j := 1; j <= 4; j++ {
			batch = append(batch, kg.Triple{Subject: p, Predicate: follows, Object: kg.EntityValue(people[(i+j*131)%nPeople])})
		}
	}
	if _, err := g.AssertBatch(batch); err != nil {
		b.Fatal(err)
	}
	eng := graphengine.New(g)
	teamRare := teams[nTeams-1]
	clauses := []graphengine.Clause{
		{Subject: graphengine.V("p"), Predicate: member, Object: graphengine.CE(teamRare)},
		{Subject: graphengine.V("p"), Predicate: awardP, Object: graphengine.CE(prize)},
	}
	// The shard-sweeping baseline: selectivity-estimate both clauses and
	// expand the cheaper one via the per-shard pos sweep, then filter with
	// HasFact — exactly what the planner did before the predicate-major
	// index existed (minus its dedup-map overhead, so the comparison is
	// conservative).
	sweepEval := func() int {
		p1, o1 := member, kg.EntityValue(teamRare)
		p2, o2 := awardP, kg.EntityValue(prize)
		if len(g.SubjectsWithSweep(p2, o2)) < len(g.SubjectsWithSweep(p1, o1)) {
			p1, o1, p2, o2 = p2, o2, p1, o1
		}
		n := 0
		for _, s := range g.SubjectsWithSweep(p1, o1) {
			if g.HasFact(s, p2, o2) {
				n++
			}
		}
		return n
	}
	res, err := eng.QueryConjunctive(clauses)
	if err != nil {
		b.Fatal(err)
	}
	if want := sweepEval(); len(res) != want || want == 0 {
		b.Fatalf("planner found %d bindings, sweep baseline %d (must agree and be non-empty)", len(res), want)
	}
	b.Run("pom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.QueryConjunctive(clauses); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sweepEval()
		}
	})
}

// BenchmarkE14QueryStream measures what the streaming query API buys the
// serving path: a limit=10 conjunctive query over a skewed graph where
// the answer set is wide (every hot-team member also won the award, so
// thousands of bindings satisfy the conjunction). The "stream" case
// pushes the limit into the solver (StreamConjunctive stops probing after
// ten rows); the "materialize" case replays the pre-streaming strategy —
// QueryConjunctive solves, dedups, and sorts the full answer set, then
// the caller keeps the first ten. Report-only per the E14+ convention.
func BenchmarkE14QueryStream(b *testing.B) {
	g := kg.NewGraphWithShards(64)
	add := func(key string) kg.EntityID {
		id, err := g.AddEntity(kg.Entity{Key: key})
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	awardP, _ := g.AddPredicate(kg.Predicate{Name: "award"})
	follows, _ := g.AddPredicate(kg.Predicate{Name: "follows"})
	const nPeople = 8192
	const nTeams = 64
	teams := make([]kg.EntityID, nTeams)
	for i := range teams {
		teams[i] = add(fmt.Sprintf("team%d", i))
	}
	prize := add("prize")
	people := make([]kg.EntityID, nPeople)
	for i := range people {
		people[i] = add(fmt.Sprintf("p%d", i))
	}
	batch := make([]kg.Triple, 0, nPeople*7)
	for i, p := range people {
		// Half the people pile onto the hot team 0, the rest spread across
		// the other teams; every hot-team member holds the award, so the
		// queried conjunction has ~4096 answers.
		ti := 0
		if i%2 == 1 {
			ti = 1 + (i/2)%(nTeams-1)
		}
		batch = append(batch, kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(teams[ti])})
		if ti == 0 || i%7 == 0 {
			batch = append(batch, kg.Triple{Subject: p, Predicate: awardP, Object: kg.EntityValue(prize)})
		}
		for j := 1; j <= 4; j++ {
			batch = append(batch, kg.Triple{Subject: p, Predicate: follows, Object: kg.EntityValue(people[(i+j*131)%nPeople])})
		}
	}
	if _, err := g.AssertBatch(batch); err != nil {
		b.Fatal(err)
	}
	eng := graphengine.New(g)
	clauses := []graphengine.Clause{
		{Subject: graphengine.V("p"), Predicate: member, Object: graphengine.CE(teams[0])},
		{Subject: graphengine.V("p"), Predicate: awardP, Object: graphengine.CE(prize)},
	}
	const limit = 10

	// Correctness pins: the limited stream yields exactly limit rows and
	// the materialized solve finds the full wide answer set.
	full, err := eng.QueryConjunctive(clauses)
	if err != nil {
		b.Fatal(err)
	}
	if len(full) != nPeople/2 {
		b.Fatalf("full solve = %d bindings, want %d", len(full), nPeople/2)
	}

	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, err := range eng.StreamConjunctive(clauses, graphengine.QueryOptions{Limit: limit}) {
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != limit {
				b.Fatalf("stream yielded %d rows, want %d", n, limit)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := eng.QueryConjunctive(clauses)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) < limit {
				b.Fatalf("materialized solve = %d rows, want >= %d", len(res), limit)
			}
			res = res[:limit]
			_ = res
		}
	})
}

// BenchmarkE15Ingest measures parallel same-predicate batch ingestion —
// the ODKE bulk-load shape: 8 goroutines AssertBatch disjoint subject
// ranges of ONE predicate into a 64-shard graph, so writers land on
// distinct shards but every index update converges on the same hot
// predicate. The "buffered" case is the serving configuration (per-shard
// pom delta buffers, drained to the predicate stripe once per buffer);
// the "unbuffered" case pins the flush threshold to 1, which applies
// every record under the predicate's stripe lock inside the writer's
// critical section — the PR-3/PR-4 write path, where all 8 workers
// serialize on the hot stripe no matter how the subjects shard. Gated
// (E15): the buffered number is the one the gate protects.
//
// Like BenchmarkGraphAssertParallel, the contention removal this
// measures needs real cores to show its full factor: on a single-core
// container the workers never actually collide on the stripe (the lock
// is free whenever a goroutine runs), so buffered vs unbuffered differ
// only by the amortized lock/bookkeeping overhead (~5%); on multicore
// hardware the unbuffered case serializes all 8 workers per record while
// the buffered case contends once per 256 records.
func BenchmarkE15Ingest(b *testing.B) {
	const pool = 1 << 16
	const batchSize = 512
	for _, mode := range []struct {
		name    string
		flushAt int
	}{{"buffered", 0}, {"unbuffered", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			g := kg.NewGraphWithOptions(kg.GraphOptions{Shards: 64, PomFlushThreshold: mode.flushAt})
			p, _ := g.AddPredicate(kg.Predicate{Name: "type"})
			ids := make([]kg.EntityID, pool)
			for i := range ids {
				id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			var worker atomic.Int64
			procs := runtime.GOMAXPROCS(0)
			// SetParallelism targets ≈8 goroutines but RunParallel spawns
			// parallelism*GOMAXPROCS, which overshoots on core counts that
			// don't divide 8 — so ranges are striped mod 64 (the shard
			// count), keeping every worker's subjects on their own shard
			// for any worker count up to 64.
			b.SetParallelism((8 + procs - 1) / procs)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1)) - 1
				rng := rand.New(rand.NewSource(int64(w)))
				batch := make([]kg.Triple, batchSize)
				var i int64
				for pb.Next() {
					i++
					for j := range batch {
						// Worker w owns the subjects congruent to w mod 64
						// (disjoint shards across workers); every object
						// value is fresh, so each batch asserts batchSize
						// new facts of the one shared predicate.
						s := ids[rng.Intn(pool/64)*64+w%64]
						batch[j] = kg.Triple{Subject: s, Predicate: p, Object: kg.IntValue(int64(w)<<48 | i<<16 | int64(j))}
					}
					if _, err := g.AssertBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(batchSize), "triples/op")
		})
	}
}

// BenchmarkGraphRetractHot measures Retract against a hot posting list —
// n subjects all asserting (type, Person), the paper's person-entity
// shape — at three sizes spanning 64×. Each op retracts one fact and
// re-asserts it, so the posting stays at steady-state size while the
// tombstone + position-map path (and its periodic compaction) is
// exercised continuously. Near-flat ns/op across n demonstrates the O(1)
// amortized retract: at equal sample counts the per-op cost grows only
// ~2.5× over the 64× size spread (cache misses on the 64×-larger maps
// and GC presence on the 64×-larger heap — memory hierarchy, not
// algorithm), where the pre-PR-5 linear posting scans grew proportionally
// with n. Prefer comparing sizes at a fixed -benchtime Nx: at small
// time-based sample counts the amortized slice doublings and map
// rehashes of the big fixture dominate the mean.
func BenchmarkGraphRetractHot(b *testing.B) {
	for _, n := range []int{16384, 131072, 1048576} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := kg.NewGraphWithShards(64)
			typeP, _ := g.AddPredicate(kg.Predicate{Name: "type"})
			person, err := g.AddEntity(kg.Entity{Key: "Person"})
			if err != nil {
				b.Fatal(err)
			}
			subs := make([]kg.EntityID, n)
			batch := make([]kg.Triple, n)
			obj := kg.EntityValue(person)
			for i := range subs {
				id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("s%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				subs[i] = id
				batch[i] = kg.Triple{Subject: id, Predicate: typeP, Object: obj}
			}
			// Subjects were registered in ascending ID order, so the batch
			// is identity-sorted and restores through the merge-append path.
			if _, err := g.AssertBatch(batch); err != nil {
				b.Fatal(err)
			}
			g.SyncIndexes()
			// Warm the amortized structures off the clock: the first
			// retract against the hot posting builds its position map (an
			// O(n) one-time cost amortized over the n asserts that grew
			// it), and the first retract landing on each shard builds that
			// shard's osp position map. Steady state is what the loop
			// below must show flat.
			for i := 0; i < g.NumShards()*2; i++ {
				tr := kg.Triple{Subject: subs[i], Predicate: typeP, Object: obj}
				if !g.Retract(tr) {
					b.Fatal("warmup retract missed")
				}
				if err := g.Assert(tr); err != nil {
					b.Fatal(err)
				}
			}
			g.SyncIndexes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := kg.Triple{Subject: subs[i%n], Predicate: typeP, Object: obj}
				if !g.Retract(tr) {
					b.Fatal("retract missed a live fact")
				}
				if err := g.Assert(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphAssertBatchSorted measures the disk-restore shape: one
// 65536-triple snapshot in AllTriples order (subjects ascending, then
// predicate, then object identity) bulk-loaded into a fresh 64-shard
// graph with a single AssertBatch call. The "sorted" case takes the
// merge-append fast path (O(n) sortedness check + stable shard bucket);
// the "shuffled" case replays the identical triples through a fixed
// permutation and pays the general per-batch (shard, identity) comparison
// sort. Graph construction and entity registration happen off the clock.
func BenchmarkGraphAssertBatchSorted(b *testing.B) {
	const pool = 4096
	const perSubject = 16 // 4 predicates x 4 ascending objects
	const batchSize = pool * perSubject
	build := func(g *kg.Graph) ([]kg.EntityID, []kg.PredicateID) {
		ids := make([]kg.EntityID, pool)
		for i := range ids {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = id
		}
		preds := make([]kg.PredicateID, 4)
		for i := range preds {
			preds[i], _ = g.AddPredicate(kg.Predicate{Name: fmt.Sprintf("p%d", i)})
		}
		return ids, preds
	}
	// Template graph fixes the ID assignment; every fresh graph below
	// registers the same records in the same order, so the snapshot's IDs
	// stay valid.
	tmpl := kg.NewGraphWithShards(64)
	ids, preds := build(tmpl)
	snapshot := make([]kg.Triple, 0, batchSize)
	for si, s := range ids {
		for _, p := range preds {
			for k := 0; k < 4; k++ {
				var obj kg.Value
				if p == preds[0] {
					// Entity-valued facts keep ascending object identity
					// within the run because ids are assigned ascending.
					obj = kg.EntityValue(ids[(si*4+k)%pool])
				} else {
					obj = kg.IntValue(int64(si*16 + k))
				}
				snapshot = append(snapshot, kg.Triple{Subject: s, Predicate: p, Object: obj})
			}
		}
	}
	shuffled := append([]kg.Triple(nil), snapshot...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for _, c := range []struct {
		name  string
		batch []kg.Triple
	}{{"sorted", snapshot}, {"shuffled", shuffled}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := kg.NewGraphWithShards(64)
				build(g)
				b.StartTimer()
				added, err := g.AssertBatch(c.batch)
				if err != nil {
					b.Fatal(err)
				}
				if added != batchSize {
					b.Fatalf("restored %d of %d triples", added, batchSize)
				}
			}
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}

// BenchmarkGraphAssert measures raw triple ingestion.
func BenchmarkGraphAssert(b *testing.B) {
	g := kg.NewGraph()
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	const pool = 10000
	ids := make([]kg.EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Assert(kg.Triple{Subject: ids[i%pool], Predicate: p, Object: kg.IntValue(int64(i))})
	}
}

// BenchmarkGraphAssertParallel measures concurrent triple ingestion at 8
// goroutines, comparing the single-lock baseline (shards=1) against the
// sharded write path (shards=8). Each goroutine asserts fresh facts for
// its own subject slice, the write pattern ODKE-style ingestion produces.
// On multi-core hardware the sharded graph scales with cores; on a single
// core it still wins by keeping writers off one contended lock.
func BenchmarkGraphAssertParallel(b *testing.B) {
	const pool = 8192
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g := kg.NewGraphWithShards(shards)
			p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
			ids := make([]kg.EntityID, pool)
			for i := range ids {
				id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			var worker atomic.Int64
			procs := runtime.GOMAXPROCS(0)
			b.SetParallelism((8 + procs - 1) / procs) // ≈8 goroutines total
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1)) - 1
				rng := rand.New(rand.NewSource(int64(w)))
				var i int64
				for pb.Next() {
					i++
					// Worker w owns the subjects congruent to w mod 8, so
					// writers land on distinct shards (mirroring ingestion
					// workers partitioned by subject) and every object value
					// is fresh.
					s := ids[rng.Intn(pool/8)*8+w%8]
					_ = g.Assert(kg.Triple{Subject: s, Predicate: p, Object: kg.IntValue(int64(w)<<40 | i)})
				}
			})
		})
	}
}

// BenchmarkGraphAssertBatch compares looped Assert against the AssertBatch
// fast path (one lock acquisition per shard, indexes grown per run) for a
// 512-triple ingestion batch.
func BenchmarkGraphAssertBatch(b *testing.B) {
	const pool, batchSize = 1024, 512
	mkGraph := func(b *testing.B) (*kg.Graph, []kg.EntityID, kg.PredicateID) {
		g := kg.NewGraphWithShards(8)
		p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
		ids := make([]kg.EntityID, pool)
		for i := range ids {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = id
		}
		return g, ids, p
	}
	mkBatch := func(ids []kg.EntityID, p kg.PredicateID, i int) []kg.Triple {
		batch := make([]kg.Triple, batchSize)
		for j := range batch {
			batch[j] = kg.Triple{Subject: ids[(i*batchSize+j*7)%pool], Predicate: p, Object: kg.IntValue(int64(i*batchSize + j))}
		}
		return batch
	}
	b.Run("loop", func(b *testing.B) {
		g, ids, p := mkGraph(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tr := range mkBatch(ids, p, i) {
				_ = g.Assert(tr)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		g, ids, p := mkGraph(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.AssertBatch(mkBatch(ids, p, i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTripleKey compares the two fact-identity representations: the
// comparable TripleKey struct (what the graph's indexes key on) vs the
// legacy SPO() string build. Each iteration keys a map insert + lookup,
// the exact operation pair Assert and HasFact perform.
func BenchmarkTripleKey(b *testing.B) {
	g := kg.NewGraph()
	p, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	const pool = 4096
	triples := make([]kg.Triple, pool)
	for i := range triples {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		triples[i] = kg.Triple{Subject: id, Predicate: p, Object: kg.IntValue(int64(i))}
	}
	b.Run("struct", func(b *testing.B) {
		set := make(map[kg.TripleKey]struct{}, pool)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := triples[i%pool].IdentityKey()
			if _, dup := set[k]; !dup {
				set[k] = struct{}{}
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		set := make(map[string]struct{}, pool)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := triples[i%pool].SPO()
			if _, dup := set[k]; !dup {
				set[k] = struct{}{}
			}
		}
	})
}

// BenchmarkPPRSnapshot compares personalized PageRank over the cached CSR
// adjacency snapshot (the engine's path) against the pre-snapshot
// formulation that re-derives each node's neighborhood from the triple
// indexes under the graph lock on every visit.
func BenchmarkPPRSnapshot(b *testing.B) {
	f := getFixture(b)
	people := f.w.People
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.engine.PersonalizedPageRank(people[i%len(people)], 0.15, 15)
		}
	})
	b.Run("naive", func(b *testing.B) {
		g := f.w.Graph
		neighbors := func(id kg.EntityID) []kg.EntityID {
			set := make(map[kg.EntityID]struct{})
			for _, t := range g.Outgoing(id) {
				if t.Object.IsEntity() {
					set[t.Object.Entity] = struct{}{}
				}
			}
			for _, t := range g.Incoming(id) {
				set[t.Subject] = struct{}{}
			}
			delete(set, id)
			out := make([]kg.EntityID, 0, len(set))
			for n := range set {
				out = append(out, n)
			}
			return out
		}
		ppr := func(source kg.EntityID, alpha float64, iters int) map[kg.EntityID]float64 {
			rank := map[kg.EntityID]float64{source: 1}
			for it := 0; it < iters; it++ {
				next := make(map[kg.EntityID]float64, len(rank))
				next[source] += alpha
				for u, r := range rank {
					nbrs := neighbors(u)
					if len(nbrs) == 0 {
						next[source] += (1 - alpha) * r
						continue
					}
					share := (1 - alpha) * r / float64(len(nbrs))
					for _, v := range nbrs {
						next[v] += share
					}
				}
				rank = next
			}
			return rank
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ppr(people[i%len(people)], 0.15, 15)
		}
	})
}

// BenchmarkSearch measures BM25 query latency on the fixture corpus.
func BenchmarkSearch(b *testing.B) {
	f := getFixture(b)
	queries := []string{"update from", "award after the match", "basketball player", "weather today"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.index.Search(queries[i%len(queries)], 10)
	}
}
