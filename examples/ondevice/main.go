// On-device example: the full §5 story. Fig 7's entity-linking scenario
// (contact + message sender + calendar invitee fuse into one "Tim Smith"),
// contextual contact ranking ("message Tim that I've added comments to
// the SIGMOD draft"), pausable incremental construction under a memory
// budget, per-source cross-device sync, and the three global knowledge
// enrichment paths.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"saga/internal/ondevice"
	"saga/saga"
)

func main() {
	base, err := os.MkdirTemp("", "saga-ondevice-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// --- Fig 7: personal KG construction --------------------------------
	fmt.Println("== personal KG construction (Fig 7) ==")
	b, err := ondevice.NewBuilder(filepath.Join(base, "phone-kg"), 4096)
	if err != nil {
		log.Fatal(err)
	}
	records := []saga.DeviceRecord{
		{Source: ondevice.SourceContacts, LocalID: "c1", Name: "Tim Smith",
			Phone: "+1 (123) 555 1234", Email: "Tim@example.com"},
		{Source: ondevice.SourceMessages, LocalID: "m1", Name: "Tim Smith",
			Phone: "123-555-1234", Note: "re: SIGMOD draft comments"},
		{Source: ondevice.SourceCalendar, LocalID: "e1", Name: "Smith, Tim",
			Email: "tim@example.com", Note: "SIGMOD planning meeting"},
		{Source: ondevice.SourceContacts, LocalID: "c2", Name: "Tim Jones",
			Phone: "999-888-7777", Note: "soccer league"},
	}
	// Pausable processing: two records, checkpoint, then the rest.
	if _, err := b.ProcessBatch(records, 2); err != nil {
		log.Fatal(err)
	}
	if err := b.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("processed 2 records, checkpointed (pipeline pausable mid-stream)")
	if _, err := b.ProcessBatch(records, 0); err != nil {
		log.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused %d raw records into %d person entities:\n", len(records), len(ents))
	for _, e := range ents {
		fmt.Printf("  entity %d: names=%v phones=%v emails=%v (%d records)\n",
			e.ID, e.Names, e.Phones, e.Emails, len(e.RecordKeys))
	}

	// Contextual contact ranking.
	ranked := ondevice.RankContactsByContext(ents, "Tim", "I've added comments to the SIGMOD draft")
	fmt.Printf("\n\"message Tim about the SIGMOD draft\" resolves to: %v\n", ranked[0].Names)
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Cross-device sync ----------------------------------------------
	fmt.Println("\n== cross-device sync with per-source preferences ==")
	data, _ := ondevice.GenerateDeviceData(ondevice.DeviceDataConfig{NumPersons: 12, RecordsPerPerson: 4, Seed: 7})
	phonePrefs := map[ondevice.SourceKind]bool{
		ondevice.SourceContacts: true, ondevice.SourceMessages: true, ondevice.SourceCalendar: false,
	}
	laptopPrefs := map[ondevice.SourceKind]bool{
		ondevice.SourceContacts: true, ondevice.SourceMessages: true, ondevice.SourceCalendar: true,
	}
	phone, err := ondevice.NewDevice(base, "phone", 3, phonePrefs, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()
	laptop, err := ondevice.NewDevice(base, "laptop", 10, laptopPrefs, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer laptop.Close()
	phone.AddLocalRecords(data)
	group := &ondevice.SyncGroup{Devices: []*ondevice.Device{phone, laptop}}
	if err := group.SyncRound(); err != nil {
		log.Fatal(err)
	}
	converged, err := group.Converged()
	if err != nil {
		log.Fatal(err)
	}
	calendarLeaked := false
	for _, r := range laptop.Feed() {
		if r.Source == ondevice.SourceCalendar {
			calendarLeaked = true
		}
	}
	fmt.Printf("devices converged on common sources: %v\n", converged)
	fmt.Printf("calendar (unsynced by phone's preference) leaked to laptop: %v\n", calendarLeaked)

	// Offload to the most capable device.
	res, err := group.OffloadExpensiveComputation(func(b *ondevice.Builder) ([]string, error) {
		es, err := b.Entities()
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("summary over %d entities", len(es))}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expensive computation offloaded to %q: %v\n", res.Executor, res.Result)

	// --- Global knowledge enrichment -------------------------------------
	fmt.Println("\n== global knowledge enrichment ==")
	world, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: 100, NumClusters: 5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	asset, err := ondevice.BuildStaticAsset(world.Graph, 20)
	if err != nil {
		log.Fatal(err)
	}
	popKey := world.Graph.Entity(world.People[0]).Key
	if entry, ok := asset.Lookup(popKey); ok {
		fmt.Printf("static asset (%d entities) answers %q locally: %d facts, zero leakage\n",
			asset.Size(), entry.Name, len(entry.Facts))
	}

	cache := ondevice.NewPiggybackCache()
	midKey := world.Graph.Entity(world.People[40]).Key
	if facts, ok := cache.ServerInteraction(world.Graph, midKey); ok {
		fmt.Printf("piggyback: user-initiated server request enriched the device with %d facts about %s\n",
			len(facts), midKey)
	}

	pir := ondevice.NewPIRServer(world.Graph)
	tailKey := world.Graph.Entity(world.People[90]).Key
	if _, ok := pir.Fetch(tailKey); ok {
		fmt.Printf("private retrieval of %s cost %d row-scans (corpus=%d rows) — reserved for high-value lookups\n",
			tailKey, pir.CostUnits, pir.NumRows())
	}
	rng := rand.New(rand.NewSource(7))
	noisy, err := ondevice.DPNoisyCount(42, 1, 1.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP aggregate query: true count 42 released as %.1f under epsilon=1\n", noisy)
}
