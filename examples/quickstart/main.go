// Quickstart: build a small knowledge graph by hand, train embeddings,
// and use the three §2 applications — fact ranking, fact verification,
// and related entities — on the paper's own LeBron James example (Fig 2).
package main

import (
	"fmt"
	"log"

	"saga/saga"
)

func main() {
	g := saga.NewGraph()
	o := g.Ontology()
	thing, _ := o.AddType("Thing", 0)
	person, _ := o.AddType("Person", thing)
	occupationT, _ := o.AddType("Occupation", thing)

	addEntity := func(key, name, desc string, t saga.TypeID, pop float64) saga.EntityID {
		id, err := g.AddEntity(saga.Entity{Key: key, Name: name, Description: desc, Types: []saga.TypeID{t}, Popularity: pop})
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	lebron := addEntity("lebron", "LeBron James", "basketball superstar", person, 0.95)
	curry := addEntity("curry", "Stephen Curry", "basketball star", person, 0.9)
	kobe := addEntity("kobe", "Kobe Bryant", "basketball legend", person, 0.9)
	savannah := addEntity("savannah", "Savannah James", "entrepreneur", person, 0.4)
	bball := addEntity("bball", "Basketball Player", "", occupationT, 0.8)
	tvactor := addEntity("tvactor", "Television Actor", "", occupationT, 0.5)
	screenwriter := addEntity("screenwriter", "Screenwriter", "", occupationT, 0.3)
	mvp := addEntity("mvp", "NBA Most Valuable Player Award", "", thing, 0.7)

	pred := func(name string) saga.PredicateID {
		id, err := g.AddPredicate(saga.Predicate{Name: name})
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	occupation := pred("occupation")
	award := pred("award")
	spouse := pred("spouse")
	teammateEra := pred("eraRival")

	assert := func(s saga.EntityID, p saga.PredicateID, obj saga.EntityID) {
		if err := g.Assert(saga.Triple{Subject: s, Predicate: p, Object: saga.EntityValue(obj)}); err != nil {
			log.Fatal(err)
		}
	}
	// LeBron's occupations, in true importance order: basketball player
	// is supported by much more graph structure than the others.
	assert(lebron, occupation, bball)
	assert(lebron, occupation, tvactor)
	assert(lebron, occupation, screenwriter)
	assert(curry, occupation, bball)
	assert(kobe, occupation, bball)
	assert(lebron, award, mvp)
	assert(curry, award, mvp)
	assert(kobe, award, mvp)
	assert(lebron, spouse, savannah)
	assert(lebron, teammateEra, curry)
	assert(lebron, teammateEra, kobe)
	assert(curry, teammateEra, kobe)

	p := saga.New(g)
	if err := p.TrainEmbeddings(saga.EmbeddingOptions{
		Train: saga.TrainConfig{Model: saga.DistMult, Dim: 16, Epochs: 200, LearningRate: 0.1, Negatives: 4, Seed: 7},
	}); err != nil {
		log.Fatal(err)
	}

	// Fact ranking: <LeBron James, occupation, ?>
	fmt.Println("Q: <LeBron James, Occupation, ?>")
	ranked, err := p.RankFacts(lebron, occupation)
	if err != nil {
		log.Fatal(err)
	}
	for i, rf := range ranked {
		fmt.Printf("  %d. %s (score %.3f)\n", i+1, g.Entity(rf.Triple.Object.Entity).Name, rf.Score)
	}

	// Fact verification: <LeBron James, occupation, TV Actor>?
	pos := [][3]uint32{{uint32(lebron), uint32(occupation), uint32(bball)}, {uint32(curry), uint32(occupation), uint32(bball)}}
	neg := [][3]uint32{{uint32(lebron), uint32(occupation), uint32(mvp)}, {uint32(curry), uint32(occupation), uint32(savannah)}}
	if err := p.CalibrateVerifier(pos, neg); err != nil {
		log.Fatal(err)
	}
	v, err := p.VerifyFact(lebron, occupation, tvactor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ: <LeBron James, Occupation, TV Actor>?\nA: plausible=%v (score %.3f, threshold %.3f)\n",
		v.Plausible, v.Score, v.Threshold)

	// Related entities: <LeBron James, Related, ?>
	rel, err := p.RelatedEntities(lebron, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ: <LeBron James, Related, ?>")
	for i, se := range rel {
		fmt.Printf("  %d. %s (similarity %.3f)\n", i+1, g.Entity(se.ID).Name, se.Score)
	}
}
