// ODKE example: the Fig 6 walkthrough on the public API. A missing
// date-of-birth for the singer "Michelle Williams" is ① identified,
// ② turned into search queries, ③ matched to relevant Web documents,
// ④ extracted from conflicting sources, and ⑤ resolved to the correct
// 1979-07-23 by corroborative fusion despite a high-confidence page
// carrying the actress's 1980-09-09.
package main

import (
	"fmt"
	"log"

	"saga/internal/odke"
	"saga/saga"
)

func main() {
	g := saga.NewGraph()
	o := g.Ontology()
	thing, _ := o.AddType("Thing", 0)
	person, _ := o.AddType("Person", thing)

	singer, err := g.AddEntity(saga.Entity{
		Key: "mw-singer", Name: "Michelle Williams",
		Aliases:     []string{"Michelle Williams"},
		Description: "Michelle Williams, American singer, member of Destiny's Child",
		Types:       []saga.TypeID{person}, Popularity: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddEntity(saga.Entity{
		Key: "mw-actress", Name: "Michelle Williams",
		Aliases:     []string{"Michelle Williams"},
		Description: "Michelle Williams, American actress known for Dawson's Creek",
		Types:       []saga.TypeID{person}, Popularity: 0.8,
	}); err != nil {
		log.Fatal(err)
	}
	dob, err := g.AddPredicate(saga.Predicate{Name: "dateOfBirth", ValueKind: saga.KindTime, Functional: true})
	if err != nil {
		log.Fatal(err)
	}

	// ③ The "Web": three pages about the singer, one of which confuses
	// her with the actress.
	docs := []*saga.Document{
		{
			ID: "d1", URL: "https://music.example/mw", Title: "Michelle Williams singer biography",
			Text:    "Michelle Williams, the singer of Destiny's Child, was born on July 23, 1979 in Rockford.",
			Quality: 0.85, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1979-07-23"},
			InfoboxSubject: singer,
		},
		{
			ID: "d2", URL: "https://gospel.example/mw", Title: "Michelle Williams discography",
			Text:    "Gospel artist Michelle Williams, born 1979, has released several solo albums.",
			Quality: 0.7, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1979-07-23"},
			InfoboxSubject: singer,
		},
		{
			ID: "d3", URL: "https://fanwiki.example/mw", Title: "Michelle Williams facts",
			Text:    "Michelle Williams was born on September 9, 1980 in Kalispell, Montana.",
			Quality: 0.4, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1980-09-09"}, // the actress's dob
			InfoboxSubject: singer,
		},
	}
	index := saga.NewSearchIndex(docs)

	p := saga.New(g)
	if err := p.BuildAnnotator(saga.AnnotateConfig{Mode: saga.ModeContextual, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	if err := p.BuildODKE(index, saga.MajorityVoteFuser{}); err != nil {
		log.Fatal(err)
	}

	// ① The missing fact.
	gap := saga.Gap{Subject: singer, Predicate: dob, Kind: saga.GapMissing, Priority: 1}
	fmt.Printf("① missing fact: <%s, dateOfBirth, ?>\n", g.Entity(singer).Name)

	// ② Auto-generated search queries.
	queries := odke.SynthesizeQueries(g, gap)
	fmt.Println("② synthesized queries:")
	for _, q := range queries {
		fmt.Printf("   %q\n", q)
	}

	// ③–⑤ Retrieve, extract, corroborate, write back.
	rep, err := p.RunODKE([]saga.Gap{gap})
	if err != nil {
		log.Fatal(err)
	}
	out := rep.Outcomes[0]
	fmt.Printf("③ retrieved %d documents\n", out.DocsRetrieved)
	fmt.Printf("④ extracted %d candidates:\n", len(out.Candidates))
	for _, c := range out.Candidates {
		fmt.Printf("   %s from %s (extractor=%s conf=%.2f quality=%.2f)\n",
			c.Value, c.DocID, c.Extractor, c.Confidence, c.DocQuality)
	}
	facts := g.Facts(singer, dob)
	if len(facts) != 1 {
		log.Fatalf("expected one fused fact, got %v", facts)
	}
	fmt.Printf("⑤ fused answer: %s (score %.2f) — the singer's true date of birth\n",
		facts[0].Object, out.Fused.Score)
}
