// Weblinking reproduces Fig 4 end to end on the public API: a synthetic
// Web crawl is semantically annotated against the KG, ambiguous mentions
// are disambiguated with contextual reranking, and the annotations extend
// the graph with entity→document edges. It then demonstrates the
// incremental path: after a simulated crawl update only changed pages are
// re-annotated.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"saga/internal/webcorpus"
	"saga/saga"
)

func main() {
	w, err := saga.GenerateWorld(saga.WorldConfig{
		NumPeople: 120, NumClusters: 8, AmbiguousNamePairs: 6, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	docs := saga.GenerateCorpus(w, saga.CorpusConfig{NumDocs: 400, Seed: 42})

	p := saga.New(w.Graph)
	if err := p.BuildAnnotator(saga.AnnotateConfig{Mode: saga.ModeContextual, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	pipe, err := p.NewAnnotationPipeline(4)
	if err != nil {
		log.Fatal(err)
	}

	stats := pipe.Run(docs)
	fmt.Printf("annotated %d documents, %d entity mentions\n", stats.Processed, stats.Mentions)

	// Show one ambiguous mention being resolved by context.
	for name, bearers := range w.AmbiguousNames {
		fmt.Printf("\nambiguous name %q is borne by %d entities:\n", name, len(bearers))
		for _, id := range bearers {
			e := w.Graph.Entity(id)
			fmt.Printf("  %s: %s\n", e.Key, e.Description)
		}
		for _, d := range docs {
			for _, gm := range d.Gold {
				if gm.Surface != name {
					continue
				}
				res, _ := pipe.Result(d.ID)
				for _, ann := range res.Items {
					if ann.Start == gm.Start {
						status := "WRONG"
						if ann.Entity == gm.Entity {
							status = "correct"
						}
						fmt.Printf("  doc %s links it to %s (%s) — %s\n",
							d.ID, w.Graph.Entity(ann.Entity).Key, d.Title, status)
					}
				}
				goto shown
			}
		}
	shown:
		break
	}

	// Extend the KG with web edges.
	added, err := pipe.LinkToGraph(w.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKG extended with %d entity→document edges\n", added)

	// Incremental re-annotation after a simulated crawl update.
	rng := rand.New(rand.NewSource(42))
	changed := webcorpus.Mutate(docs, 0.15, rng)
	inc := pipe.Run(docs)
	fmt.Printf("crawl update changed %d pages; incremental pass processed %d, skipped %d\n",
		len(changed), inc.Processed, inc.Skipped)
}
