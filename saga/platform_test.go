package saga

import (
	"testing"
)

func buildPlatform(t *testing.T) (*Platform, *World) {
	t.Helper()
	w, err := GenerateWorld(WorldConfig{NumPeople: 60, NumClusters: 6, OccupationsPerPerson: 2, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	p := New(w.Graph)
	if err := p.TrainEmbeddings(EmbeddingOptions{
		Train: TrainConfig{Model: DistMult, Dim: 24, Epochs: 20, LearningRate: 0.08, Negatives: 4, Workers: 2, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.BuildAnnotator(AnnotateConfig{Mode: ModeContextual, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, w
}

func TestPlatformLifecycleGuards(t *testing.T) {
	w, err := GenerateWorld(WorldConfig{NumPeople: 10, NumClusters: 2, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	p := New(w.Graph)
	if _, err := p.RankFacts(w.People[0], w.Preds["occupation"]); err == nil {
		t.Fatal("RankFacts before training accepted")
	}
	if _, err := p.Annotate("text"); err == nil {
		t.Fatal("Annotate before BuildAnnotator accepted")
	}
	if _, err := p.RunODKE(nil); err == nil {
		t.Fatal("RunODKE before BuildODKE accepted")
	}
	if _, err := p.RelatedEntities(w.People[0], 3); err == nil {
		t.Fatal("RelatedEntities before training accepted")
	}
	if _, err := p.VerifyFact(w.People[0], w.Preds["occupation"], w.Occupations[0]); err == nil {
		t.Fatal("VerifyFact before training accepted")
	}
	if err := p.BuildODKE(nil, MajorityVoteFuser{}); err == nil {
		t.Fatal("BuildODKE without annotator accepted")
	}
}

func TestPlatformEndToEnd(t *testing.T) {
	p, w := buildPlatform(t)

	// Fact ranking.
	ranked, err := p.RankFacts(w.People[0], w.Preds["occupation"])
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}

	// Verification with calibration.
	var pos, neg [][3]uint32
	occ := w.Preds["occupation"]
	for _, person := range w.People[:20] {
		for _, f := range w.Graph.Facts(person, occ) {
			pos = append(pos, [3]uint32{uint32(person), uint32(occ), uint32(f.Object.Entity)})
		}
		neg = append(neg, [3]uint32{uint32(person), uint32(occ), uint32(w.People[(int(person)+5)%len(w.People)])})
	}
	if err := p.CalibrateVerifier(pos, neg); err != nil {
		t.Fatal(err)
	}
	v, err := p.VerifyFact(w.People[0], occ, w.OccupationGold[w.People[0]][0])
	if err != nil {
		t.Fatal(err)
	}
	if !v.Plausible {
		t.Fatalf("gold fact not plausible: %+v", v)
	}

	// Related entities.
	rel, err := p.RelatedEntities(w.People[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 5 {
		t.Fatalf("related = %v", rel)
	}

	// Annotation.
	name := w.Graph.Entity(w.People[0]).Name
	anns, err := p.Annotate(name + " played well.")
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}

	// ODKE end to end: delete a fact, profile, extract it back.
	docs := GenerateCorpus(w, CorpusConfig{NumDocs: 300, InfoboxFraction: 0.6, Seed: 101})
	index := NewSearchIndex(docs)
	target := w.People[0]
	pred := w.Preds["memberOf"]
	gold := w.Graph.Facts(target, pred)
	if len(gold) == 0 {
		t.Fatal("fixture person has no memberOf")
	}
	w.Graph.Retract(gold[0])
	if err := p.BuildODKE(index, MajorityVoteFuser{}); err != nil {
		t.Fatal(err)
	}
	gaps := p.FindGaps(nil, ProfilerConfig{CoverageThreshold: 0.5})
	var targetGap *Gap
	for i := range gaps {
		if gaps[i].Subject == target && gaps[i].Predicate == pred {
			targetGap = &gaps[i]
		}
	}
	if targetGap == nil {
		t.Fatalf("profiler missed planted gap; got %d gaps", len(gaps))
	}
	rep, err := p.RunODKE([]Gap{*targetGap})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filled != 1 {
		t.Fatalf("ODKE report = %+v", rep)
	}
	restored := w.Graph.Facts(target, pred)
	if len(restored) != 1 || !restored[0].Object.Equal(gold[0].Object) {
		t.Fatalf("restored fact = %v, want %v", restored, gold[0].Object)
	}
}

func TestPlatformWalkEmbeddings(t *testing.T) {
	w, err := GenerateWorld(WorldConfig{NumPeople: 80, NumClusters: 8, Seed: 107})
	if err != nil {
		t.Fatal(err)
	}
	p := New(w.Graph)
	if err := p.TrainEmbeddings(EmbeddingOptions{
		Train:          TrainConfig{Model: DistMult, Dim: 16, Epochs: 10, Workers: 2, Seed: 2},
		WalkEmbeddings: true,
		Walk:           WalkEmbedConfig{Dim: 64, WalksPerNode: 30, WalkLength: 3, Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	rel, err := p.RelatedEntities(w.People[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	// Count cluster agreement over the person-typed results only (the
	// related list legitimately includes shared hubs like occupations).
	isPerson := make(map[EntityID]bool, len(w.People))
	for _, person := range w.People {
		isPerson[person] = true
	}
	var people, same int
	for _, r := range rel {
		if !isPerson[r.ID] || people >= 6 {
			continue
		}
		people++
		if w.Cluster[r.ID] == w.Cluster[w.People[0]] {
			same++
		}
	}
	if people == 0 || same*2 < people {
		t.Fatalf("walk-based related: only %d/%d people share cluster", same, people)
	}
}

func TestPlatformTrainOnEmptyView(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddEntity(Entity{Key: "only", Name: "Only"}); err != nil {
		t.Fatal(err)
	}
	p := New(g)
	if err := p.TrainEmbeddings(EmbeddingOptions{}); err == nil {
		t.Fatal("training on empty view accepted")
	}
}

func TestFacadeAccessorsAndHelpers(t *testing.T) {
	p, w := buildPlatform(t)
	if p.Graph() != w.Graph {
		t.Fatal("Graph() mismatch")
	}
	if p.Engine() == nil || p.EmbeddingService() == nil || p.Model() == nil || p.Dataset() == nil || p.Annotator() == nil {
		t.Fatal("initialized component accessor returned nil")
	}
	if p.ODKE() != nil {
		t.Fatal("ODKE non-nil before BuildODKE")
	}

	// Conjunctive query through the facade.
	team := w.Teams[0]
	bindings, err := p.QueryConjunctive([]QueryClause{
		{Subject: QVar("p"), Predicate: w.Preds["memberOf"], Object: QEntity(team)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != len(w.ClusterMembers[0]) {
		t.Fatalf("bindings = %d, want %d", len(bindings), len(w.ClusterMembers[0]))
	}
	// QConst with a literal object.
	heights, err := p.QueryConjunctive([]QueryClause{
		{Subject: QVar("x"), Predicate: w.Preds["height"], Object: QConst(IntValue(175))},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = heights // may be empty; just exercising the path

	// Annotation pipeline through the facade.
	pipe, err := p.NewAnnotationPipeline(2)
	if err != nil {
		t.Fatal(err)
	}
	docs := GenerateCorpus(w, CorpusConfig{NumDocs: 10, Seed: 1})
	stats := pipe.Run(docs)
	if stats.Processed != 10 {
		t.Fatalf("pipeline processed %d", stats.Processed)
	}

	// Engine + KV + query log helpers.
	if NewEngine(w.Graph) == nil {
		t.Fatal("NewEngine nil")
	}
	kv, err := OpenKV(t.TempDir(), KVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	log := GenerateQueryLog(w, QueryLogConfig{NumQueries: 20, Seed: 1})
	if len(log) != 20 {
		t.Fatalf("query log = %d", len(log))
	}

	// Value constructor re-exports.
	if !EntityValue(1).IsEntity() || !StringValue("s").IsLiteral() ||
		!FloatValue(1.5).IsLiteral() || !BoolValue(true).Bool() {
		t.Fatal("value constructor re-exports broken")
	}
}
