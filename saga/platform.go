package saga

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"saga/internal/annotate"
	"saga/internal/embedding"
	"saga/internal/embedserve"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/odke"
	"saga/internal/rules"
	"saga/internal/wal"
	"saga/internal/websearch"
)

// Platform bundles a knowledge graph with the services built on it
// (Fig 1): the graph engine, the embedding service, the semantic
// annotation service, and the ODKE pipeline. Construct with New, then
// initialize the services you need:
//
//	p := saga.New(graph)
//	if err := p.TrainEmbeddings(saga.EmbeddingOptions{}); err != nil { ... }
//	if err := p.BuildAnnotator(saga.AnnotateConfig{}); err != nil { ... }
//	ranked, err := p.RankFacts(subject, predicate)
type Platform struct {
	graph  *kg.Graph
	engine *graphengine.Engine

	dataset   *embedding.Dataset
	model     embedding.Model
	embedSvc  *embedserve.Service
	annotator *annotate.Annotator
	odkePipe  *odke.Pipeline
	rules     *rules.Engine

	// wal is the durability manager, set by OpenDurablePlatform; nil for
	// memory-only platforms.
	wal *wal.Manager
}

// New wraps a graph in a platform. The graph may keep growing; views and
// services observe updates per their own refresh semantics.
func New(g *Graph) *Platform {
	return &Platform{graph: g, engine: graphengine.New(g)}
}

// Graph returns the underlying knowledge graph.
func (p *Platform) Graph() *Graph { return p.graph }

// Engine returns the graph query engine.
func (p *Platform) Engine() *Engine { return p.engine }

// QueryConjunctive evaluates a conjunctive triple-pattern query (the §1
// "movies directed by X" shape) and returns all satisfying bindings,
// sorted and deduplicated. It materializes the whole answer set; serving
// paths should prefer QueryStream with a limit.
func (p *Platform) QueryConjunctive(clauses []QueryClause) ([]QueryBinding, error) {
	return p.engine.QueryConjunctive(clauses)
}

// QueryStream evaluates a conjunctive query as a stream: bindings yield
// as the join produces them (deduplicated, deterministic order), a
// QueryOptions.Limit terminates the solve early, a Cursor resumes after a
// previous page's last binding, and Context/Timeout abort mid-join.
// Errors yield as the final (nil, err) element. This is the serving-path
// query surface behind POST /query.
func (p *Platform) QueryStream(clauses []QueryClause, opts QueryOptions) iter.Seq2[QueryBinding, error] {
	return p.engine.StreamConjunctive(clauses, opts)
}

// PlanQuery validates a conjunctive query and returns its execution plan
// without running it — the explain surface behind POST /query. Plans come
// from the same cache QueryStream uses, so explaining a hot shape is a
// cache hit.
func (p *Platform) PlanQuery(clauses []QueryClause) (*QueryPlan, error) {
	return p.engine.PlanConjunctive(clauses)
}

// QueryPlanCacheStats snapshots the engine's plan-cache counters
// (hits, misses, invalidations, evictions, resident size).
func (p *Platform) QueryPlanCacheStats() QueryPlanCacheStats {
	return p.engine.PlanCacheStats()
}

// StreamQuery yields the triples matching a pattern — the iterator twin
// of Engine.Query. The yield runs under the graph's read locks; the body
// must not mutate the graph (see Engine.Stream).
func (p *Platform) StreamQuery(pat Pattern) iter.Seq[Triple] {
	return p.engine.Stream(pat)
}

// DefineRulesText installs a Datalog-style rule program (see
// internal/rules for the language): the program is parsed and validated
// against the graph (head predicates are created on demand), a rules
// engine runs the initial full derivation, attaches itself as the query
// engine's derived-fact source — derived predicates become queryable
// through every surface, POST /query included — and keeps the fixpoint
// fresh against the graph's changefeed, feeding derived visibility
// changes into live subscriptions. Redefining replaces the previous
// program (its engine is stopped and detached first).
func (p *Platform) DefineRulesText(text string) error {
	rs, err := rules.ParseRules(p.graph, text)
	if err != nil {
		return err
	}
	return p.installRules(rs)
}

// DefineRules is DefineRulesText for programs built from Rule values
// directly.
func (p *Platform) DefineRules(list []Rule) error {
	rs, err := rules.NewRuleSet(list)
	if err != nil {
		return err
	}
	return p.installRules(rs)
}

func (p *Platform) installRules(rs *rules.RuleSet) error {
	eng, err := rules.New(p.engine, rs, rules.Options{OnDelta: p.engine.ApplyDerivedDeltas})
	if err != nil {
		return fmt.Errorf("saga: define rules: %w", err)
	}
	if p.rules != nil {
		p.rules.Close()
	}
	p.rules = eng
	p.engine.AttachDerived(eng)
	return nil
}

// Rules returns the rules engine, or nil before DefineRules.
func (p *Platform) Rules() *RulesEngine { return p.rules }

// RuleStats snapshots the rules engine's derived-store size and
// maintenance counters (zero value before DefineRules).
func (p *Platform) RuleStats() RuleEngineStats {
	if p.rules == nil {
		return RuleEngineStats{}
	}
	return p.rules.Stats()
}

// DeriveRequest names one in-graph analytics materialization.
type DeriveRequest struct {
	// Kind selects the algorithm: "components" (connected components of
	// the adjacency snapshot), "sameas" (equivalence closure of Source's
	// facts), or "khop" (reachability within K hops of SourceKeys).
	Kind string
	// Out is the output predicate name, created if missing. It must not
	// be a rule head.
	Out string
	// Source is the edge predicate name for Kind "sameas".
	Source string
	// SourceKeys are the BFS source entity keys for Kind "khop".
	SourceKeys []string
	// K is the hop bound for Kind "khop".
	K int
}

// DeriveStats runs one analytics pass and materializes the result as a
// derived predicate (replacing any previous materialization of the same
// predicate). Requires DefineRules first — an empty program
// (DefineRulesText("")) stands up an analytics-only engine.
func (p *Platform) DeriveStats(req DeriveRequest) (DeriveReport, error) {
	if p.rules == nil {
		return DeriveReport{}, errors.New("saga: rules engine not initialized; call DefineRules first (an empty program works)")
	}
	if req.Out == "" {
		return DeriveReport{}, errors.New("saga: derive: output predicate name required")
	}
	out, err := p.predicateID(req.Out)
	if err != nil {
		return DeriveReport{}, err
	}
	switch req.Kind {
	case "components":
		return p.rules.DeriveComponents(out)
	case "sameas":
		src, ok := p.graph.PredicateByName(req.Source)
		if !ok {
			return DeriveReport{}, fmt.Errorf("saga: derive: unknown source predicate %q", req.Source)
		}
		return p.rules.DeriveSameAsClosure(src.ID, out)
	case "khop":
		srcs := make([]EntityID, 0, len(req.SourceKeys))
		for _, key := range req.SourceKeys {
			e, ok := p.graph.EntityByKey(key)
			if !ok {
				return DeriveReport{}, fmt.Errorf("saga: derive: unknown entity key %q", key)
			}
			srcs = append(srcs, e.ID)
		}
		return p.rules.DeriveKHop(out, srcs, req.K)
	default:
		return DeriveReport{}, fmt.Errorf("saga: derive: unknown kind %q (want components, sameas, or khop)", req.Kind)
	}
}

func (p *Platform) predicateID(name string) (PredicateID, error) {
	if pr, ok := p.graph.PredicateByName(name); ok {
		return pr.ID, nil
	}
	id, err := p.graph.AddPredicate(kg.Predicate{Name: name})
	if err != nil {
		return 0, fmt.Errorf("saga: derive: output predicate %q: %w", name, err)
	}
	return id, nil
}

// EmbeddingOptions configure Platform.TrainEmbeddings.
type EmbeddingOptions struct {
	// View filters the training triples; zero value drops literal facts,
	// which is the §2 default for entity embeddings.
	View ViewDef
	// Train configures the trainer; zero values pick sensible defaults.
	Train TrainConfig
	// WalkEmbeddings additionally trains traversal-based related-entity
	// vectors and installs them in the service.
	WalkEmbeddings bool
	// Walk configures the walk embedder when WalkEmbeddings is set.
	Walk WalkEmbedConfig
}

// TrainEmbeddings materializes a training view, trains the model, and
// stands up the embedding service (Fig 3's training path).
func (p *Platform) TrainEmbeddings(opts EmbeddingOptions) error {
	view := opts.View
	if view.Name == "" {
		view.Name = "embedding-training"
		if !view.DropLiteralFacts && !view.DropEntityFacts && view.MinPredicateFreq == 0 &&
			view.IncludePredicates == nil && view.ExcludePredicates == nil {
			view.DropLiteralFacts = true
		}
	}
	v := p.engine.Materialize(view)
	d := embedding.NewDataset(v.Triples())
	if len(d.Triples) == 0 {
		return errors.New("saga: training view produced no entity-valued triples")
	}
	m, err := embedding.Train(d, opts.Train)
	if err != nil {
		return fmt.Errorf("saga: train embeddings: %w", err)
	}
	svc, err := embedserve.New(p.graph, m, d)
	if err != nil {
		return fmt.Errorf("saga: build embedding service: %w", err)
	}
	if opts.WalkEmbeddings {
		vecs := embedding.TrainWalkEmbeddings(p.engine, d.Ents, opts.Walk)
		if err := svc.SetWalkEmbeddings(vecs); err != nil {
			return fmt.Errorf("saga: install walk embeddings: %w", err)
		}
	}
	p.dataset = d
	p.model = m
	p.embedSvc = svc
	return nil
}

// EmbeddingService returns the trained embedding service, or nil before
// TrainEmbeddings.
func (p *Platform) EmbeddingService() *EmbeddingService { return p.embedSvc }

// Model returns the trained embedding model, or nil before training.
func (p *Platform) Model() Model { return p.model }

// Dataset returns the training dataset (index space), or nil.
func (p *Platform) Dataset() *Dataset { return p.dataset }

// RankFacts ranks (subject, predicate, *) facts by embedding score.
func (p *Platform) RankFacts(subject EntityID, predicate PredicateID) ([]RankedFact, error) {
	return p.RankFactsContext(context.Background(), subject, predicate)
}

// RankFactsContext is RankFacts with cancellation, for serving handlers
// that should stop scoring when the client disconnects.
func (p *Platform) RankFactsContext(ctx context.Context, subject EntityID, predicate PredicateID) ([]RankedFact, error) {
	if p.embedSvc == nil {
		return nil, errors.New("saga: embeddings not trained; call TrainEmbeddings first")
	}
	return p.embedSvc.RankFactsContext(ctx, subject, predicate)
}

// CalibrateVerifier fits the fact-verification threshold from labelled
// positive and negative triples given as (subject, predicate, object)
// graph IDs, and installs it in the service.
func (p *Platform) CalibrateVerifier(pos, neg [][3]uint32) error {
	if p.embedSvc == nil {
		return errors.New("saga: embeddings not trained")
	}
	conv := func(in [][3]uint32) ([][3]int32, error) {
		out := make([][3]int32, 0, len(in))
		for _, t := range in {
			h, ok := p.dataset.EntityIndex(kg.EntityID(t[0]))
			if !ok {
				continue
			}
			r, ok := p.dataset.RelationIndex(kg.PredicateID(t[1]))
			if !ok {
				continue
			}
			o, ok := p.dataset.EntityIndex(kg.EntityID(t[2]))
			if !ok {
				continue
			}
			out = append(out, [3]int32{h, r, o})
		}
		if len(out) == 0 {
			return nil, errors.New("saga: no calibration triples map into the embedding space")
		}
		return out, nil
	}
	posIdx, err := conv(pos)
	if err != nil {
		return err
	}
	negIdx, err := conv(neg)
	if err != nil {
		return err
	}
	thr := embedding.CalibrateThreshold(p.model, posIdx, negIdx)
	p.embedSvc.SetVerifyThreshold(thr)
	return nil
}

// VerifyFact classifies a candidate triple (requires CalibrateVerifier).
func (p *Platform) VerifyFact(subject EntityID, predicate PredicateID, object EntityID) (Verification, error) {
	if p.embedSvc == nil {
		return Verification{}, errors.New("saga: embeddings not trained")
	}
	return p.embedSvc.VerifyFact(subject, predicate, object)
}

// RelatedEntities returns the k most related entities.
func (p *Platform) RelatedEntities(id EntityID, k int) ([]embedserve.ScoredEntity, error) {
	return p.RelatedEntitiesContext(context.Background(), id, k)
}

// RelatedEntitiesContext is RelatedEntities with cancellation, for
// serving handlers that should stop the kNN scan when the client
// disconnects.
func (p *Platform) RelatedEntitiesContext(ctx context.Context, id EntityID, k int) ([]embedserve.ScoredEntity, error) {
	if p.embedSvc == nil {
		return nil, errors.New("saga: embeddings not trained")
	}
	return p.embedSvc.RelatedEntitiesContext(ctx, id, k)
}

// BuildAnnotator stands up the semantic annotation service.
func (p *Platform) BuildAnnotator(cfg AnnotateConfig) error {
	a, err := annotate.New(p.graph, cfg)
	if err != nil {
		return fmt.Errorf("saga: build annotator: %w", err)
	}
	p.annotator = a
	return nil
}

// Annotator returns the annotation service, or nil before BuildAnnotator.
func (p *Platform) Annotator() *Annotator { return p.annotator }

// Annotate links entity mentions in text.
func (p *Platform) Annotate(text string) ([]Annotation, error) {
	if p.annotator == nil {
		return nil, errors.New("saga: annotator not built; call BuildAnnotator first")
	}
	return p.annotator.Annotate(text), nil
}

// NewAnnotationPipeline returns a corpus-scale incremental annotation
// pipeline over the platform's annotator.
func (p *Platform) NewAnnotationPipeline(workers int) (*AnnotationPipeline, error) {
	if p.annotator == nil {
		return nil, errors.New("saga: annotator not built")
	}
	return annotate.NewPipeline(p.annotator, workers), nil
}

// BuildODKE wires the extraction pipeline over a search index, using the
// platform's annotator and the default extractor pair (infobox rules +
// annotation-driven text patterns) with the given fuser.
func (p *Platform) BuildODKE(index *websearch.Index, fuser Fuser) error {
	if p.annotator == nil {
		return errors.New("saga: annotator required for ODKE; call BuildAnnotator first")
	}
	resolver := odke.NewEntityResolver(p.graph)
	extractors := []odke.Extractor{
		odke.NewInfoboxExtractor(p.graph, resolver),
		odke.NewTextExtractor(p.graph),
	}
	pipe, err := odke.NewPipeline(p.graph, index, p.annotator, extractors, fuser)
	if err != nil {
		return fmt.Errorf("saga: build ODKE: %w", err)
	}
	if p.wal != nil {
		// Durable platforms fsync-acknowledge every extraction run before
		// Run returns: freshly mined facts survive a crash.
		pipe.DurabilityBarrier = p.wal.SyncToWatermark
	}
	p.odkePipe = pipe
	return nil
}

// ODKE returns the extraction pipeline, or nil before BuildODKE.
func (p *Platform) ODKE() *ODKEPipeline { return p.odkePipe }

// FindGaps profiles the KG (and optional query log) for missing/stale
// facts.
func (p *Platform) FindGaps(queryLog []QueryLogEntry, cfg ProfilerConfig) []Gap {
	return odke.FindGaps(p.graph, queryLog, cfg)
}

// RunODKE executes the extraction pipeline over the gaps.
func (p *Platform) RunODKE(gaps []Gap) (ODKEReport, error) {
	if p.odkePipe == nil {
		return ODKEReport{}, errors.New("saga: ODKE not built; call BuildODKE first")
	}
	return p.odkePipe.Run(gaps)
}
