package saga

import (
	"testing"
)

// TestDurablePlatformRoundTrip seeds a durable data directory from a
// generated world, mutates, checkpoints, closes, and reopens — the public
// API's end-to-end durability contract.
func TestDurablePlatformRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := GenerateWorld(WorldConfig{NumPeople: 40, NumClusters: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	p, info, err := OpenDurablePlatform(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.RecoveredLSN != 0 {
		t.Fatalf("fresh directory recovered LSN %d", info.RecoveredLSN)
	}
	if p.Durability() == nil {
		t.Fatal("durable platform has no manager")
	}
	if err := ImportGraph(p.Graph(), w.Graph); err != nil {
		t.Fatal(err)
	}
	// A few post-import mutations so recovery exercises log replay on top
	// of the checkpoint.
	if _, err := p.CheckpointDurable(); err != nil {
		t.Fatal(err)
	}
	id, err := p.Graph().AddEntity(Entity{Key: "late", Name: "late arrival"})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.Graph().AddPredicate(Predicate{Name: "lateFact"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Graph().Assert(Triple{Subject: id, Predicate: pred, Object: IntValue(42)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SyncDurable(); err != nil {
		t.Fatal(err)
	}
	wantTriples := p.Graph().NumTriples()
	wantSeq := p.Graph().LastSeq()
	if err := p.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	if p.Durability() != nil {
		t.Fatal("manager survives CloseDurable")
	}

	p2, info2, err := OpenDurablePlatform(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseDurable()
	if info2.RecoveredLSN != wantSeq || p2.Graph().LastSeq() != wantSeq {
		t.Fatalf("recovered LSN %d (graph %d), want %d", info2.RecoveredLSN, p2.Graph().LastSeq(), wantSeq)
	}
	if got := p2.Graph().NumTriples(); got != wantTriples {
		t.Fatalf("recovered %d triples, want %d", got, wantTriples)
	}
	if e, ok := p2.Graph().EntityByKey("late"); !ok || e.Name != "late arrival" {
		t.Fatalf("post-checkpoint entity lost: %+v ok=%v", e, ok)
	}
	// The recovered platform is queryable.
	got := p2.Engine().Query(Pattern{Subject: &id, Predicate: &pred})
	if len(got) != 1 || !got[0].Object.Equal(IntValue(42)) {
		t.Fatalf("recovered fact query = %v", got)
	}
}

// TestMemoryPlatformDurabilityErrors pins the memory-only behavior of
// the durability methods.
func TestMemoryPlatformDurabilityErrors(t *testing.T) {
	p := New(NewGraph())
	if p.Durability() != nil {
		t.Fatal("memory platform has a manager")
	}
	if _, err := p.SyncDurable(); err == nil {
		t.Fatal("SyncDurable on memory platform succeeded")
	}
	if _, err := p.CheckpointDurable(); err == nil {
		t.Fatal("CheckpointDurable on memory platform succeeded")
	}
	if err := p.CloseDurable(); err != nil {
		t.Fatalf("CloseDurable on memory platform: %v", err)
	}
}
