// Package saga is the public API of the Saga knowledge-platform
// reproduction. It re-exports the core data model and wires the
// subsystems — graph engine, embedding pipeline, embedding service,
// semantic annotation, open-domain knowledge extraction, and the
// on-device stack — behind one Platform type.
//
// The subsystem implementations live in internal/ packages; this package
// aliases their exported types so downstream users program against a
// single import.
package saga

import (
	"saga/internal/annotate"
	"saga/internal/embedding"
	"saga/internal/embedserve"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/odke"
	"saga/internal/ondevice"
	"saga/internal/rules"
	"saga/internal/storage"
	"saga/internal/vecindex"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

// Core data model (internal/kg).
type (
	// Graph is the in-memory indexed triple store.
	Graph = kg.Graph
	// Entity is a node's metadata record.
	Entity = kg.Entity
	// Predicate is an edge label's metadata record.
	Predicate = kg.Predicate
	// Triple is one fact with provenance.
	Triple = kg.Triple
	// Value is a triple object: entity reference or typed literal.
	Value = kg.Value
	// Provenance records fact origin and trust.
	Provenance = kg.Provenance
	// Ontology is the type hierarchy.
	Ontology = kg.Ontology
	// EntityID identifies an entity.
	EntityID = kg.EntityID
	// PredicateID identifies a predicate.
	PredicateID = kg.PredicateID
	// TypeID identifies an ontology type.
	TypeID = kg.TypeID
	// Mutation is one change-log entry.
	Mutation = kg.Mutation
)

// Value constructors.
var (
	EntityValue = kg.EntityValue
	StringValue = kg.StringValue
	IntValue    = kg.IntValue
	FloatValue  = kg.FloatValue
	TimeValue   = kg.TimeValue
	BoolValue   = kg.BoolValue
)

// Value kinds.
const (
	KindEntity = kg.KindEntity
	KindString = kg.KindString
	KindInt    = kg.KindInt
	KindFloat  = kg.KindFloat
	KindTime   = kg.KindTime
	KindBool   = kg.KindBool
)

// Gap kinds.
const (
	GapMissing = odke.GapMissing
	GapStale   = odke.GapStale
)

// NewGraph returns an empty knowledge graph with the default write-shard
// count (GOMAXPROCS rounded up to a power of two).
func NewGraph() *Graph { return kg.NewGraph() }

// NewGraphWithShards returns an empty knowledge graph with an explicit
// write-shard count (rounded up to a power of two); shard count 1 is the
// classic single-lock graph.
func NewGraphWithShards(n int) *Graph { return kg.NewGraphWithShards(n) }

// Graph engine (internal/graphengine).
type (
	// Engine provides queries, traversals, and materialized views.
	Engine = graphengine.Engine
	// ViewDef declares a filtered graph view.
	ViewDef = graphengine.ViewDef
	// View is a materialized, incrementally-maintained view.
	View = graphengine.View
	// Pattern is a triple pattern with optional bindings.
	Pattern = graphengine.Pattern
	// ScoredEntity pairs an entity with a relevance score.
	ScoredEntity = graphengine.ScoredEntity
	// QueryClause is one triple pattern of a conjunctive query.
	QueryClause = graphengine.Clause
	// QueryTerm is a variable or constant clause position.
	QueryTerm = graphengine.Term
	// QueryBinding maps variables to values in a query answer.
	QueryBinding = graphengine.Binding
	// QueryOptions configure one streaming query: limit push-down,
	// cursor resumption, provenance routing, dedup opt-out for unlimited
	// streams (NoDedup), timeout, and cancellation.
	QueryOptions = graphengine.QueryOptions
	// QueryCursor is a binding's identity tuple, the resume position of
	// a paginated conjunctive query.
	QueryCursor = []kg.ValueKey
	// QueryPlan is an immutable conjunctive-query execution plan:
	// clause order, access paths, and build-time cardinality estimates.
	QueryPlan = graphengine.Plan
	// QueryPlanStep is the serializable description of one plan step.
	QueryPlanStep = graphengine.StepInfo
	// QueryPlanCacheStats snapshots the plan cache's counters.
	QueryPlanCacheStats = graphengine.PlanCacheStats
)

// Conjunctive-query term constructors and cursor helpers.
var (
	// QVar names a query variable.
	QVar = graphengine.V
	// QConst binds a constant value.
	QConst = graphengine.C
	// QEntity binds a constant entity.
	QEntity = graphengine.CE
	// QueryBindingKey returns a binding's identity tuple (values in
	// sorted-variable order) — the input to EncodeQueryCursor.
	QueryBindingKey = graphengine.BindingKey
	// EncodeQueryCursor serializes a binding key tuple into the opaque
	// URL-safe resume token the /query endpoint hands out.
	EncodeQueryCursor = graphengine.EncodeCursor
	// DecodeQueryCursor parses a token produced by EncodeQueryCursor.
	DecodeQueryCursor = graphengine.DecodeCursor
)

// NewEngine wraps a graph with query and view capabilities.
func NewEngine(g *Graph) *Engine { return graphengine.New(g) }

// Rule layer (internal/rules).
type (
	// Rule is one Datalog-style rule over query clauses.
	Rule = rules.Rule
	// RuleSet is a validated, stratified rule program.
	RuleSet = rules.RuleSet
	// RulesEngine maintains the derived-fact fixpoint incrementally.
	RulesEngine = rules.Engine
	// RuleEngineStats snapshots the rules engine's counters.
	RuleEngineStats = rules.Stats
	// DeriveReport describes one analytics materialization.
	DeriveReport = rules.DeriveReport
)

// ParseRules parses a Datalog-style rule program against a graph without
// installing it (Platform.DefineRulesText parses and installs).
var ParseRules = rules.ParseRules

// Embeddings (internal/embedding, internal/embedserve).
type (
	// Dataset is a re-indexed embedding training set.
	Dataset = embedding.Dataset
	// TrainConfig configures embedding training.
	TrainConfig = embedding.TrainConfig
	// Model is a trained shallow KG embedding model.
	Model = embedding.Model
	// ModelKind selects TransE, DistMult, or ComplEx.
	ModelKind = embedding.ModelKind
	// EvalResult holds link-prediction metrics.
	EvalResult = embedding.EvalResult
	// WalkEmbedConfig configures traversal-based related-entity vectors.
	WalkEmbedConfig = embedding.WalkEmbedConfig
	// EmbeddingService serves embeddings for ranking/verification/related.
	EmbeddingService = embedserve.Service
	// RankedFact is a fact with its plausibility score.
	RankedFact = embedserve.RankedFact
	// Verification is a fact-verification outcome.
	Verification = embedserve.Verification
)

// Model kinds.
const (
	TransE   = embedding.TransE
	DistMult = embedding.DistMult
	ComplEx  = embedding.ComplEx
)

// Annotation (internal/annotate).
type (
	// Annotator links text to KG entities.
	Annotator = annotate.Annotator
	// AnnotateConfig configures an Annotator.
	AnnotateConfig = annotate.Config
	// Annotation is one linked mention.
	Annotation = annotate.Annotation
	// AnnotationPipeline annotates corpora incrementally.
	AnnotationPipeline = annotate.Pipeline
	// AnnotationMode selects lexical/popularity/contextual ranking.
	AnnotationMode = annotate.Mode
)

// Annotation modes.
const (
	ModeLexical    = annotate.ModeLexical
	ModePopularity = annotate.ModePopularity
	ModeContextual = annotate.ModeContextual
)

// ODKE (internal/odke).
type (
	// Gap is a missing or stale fact slot.
	Gap = odke.Gap
	// ODKEPipeline runs gap → search → extract → fuse → write.
	ODKEPipeline = odke.Pipeline
	// ODKEReport summarizes a pipeline run.
	ODKEReport = odke.Report
	// Fuser corroborates candidate facts.
	Fuser = odke.Fuser
	// CandidateFact is one extracted hypothesis.
	CandidateFact = odke.CandidateFact
	// ProfilerConfig configures gap detection.
	ProfilerConfig = odke.ProfilerConfig
	// MajorityVoteFuser corroborates by vote share.
	MajorityVoteFuser = odke.MajorityVoteFuser
	// BestExtractorFuser trusts the single most confident candidate.
	BestExtractorFuser = odke.BestExtractorFuser
	// LogisticFuser is the trained corroboration model.
	LogisticFuser = odke.LogisticFuser
	// FusionTrainingExample is one labelled value group.
	FusionTrainingExample = odke.TrainingExample
)

// TrainFuser fits the logistic corroboration model.
var TrainFuser = odke.TrainLogisticFuser

// Web substrates (internal/webcorpus, internal/websearch).
type (
	// Document is a synthetic web page.
	Document = webcorpus.Document
	// SearchIndex is the BM25 search engine.
	SearchIndex = websearch.Index
	// SearchHit is one search result.
	SearchHit = websearch.Hit
)

// On-device (internal/ondevice).
type (
	// DeviceRecord is one raw source observation.
	DeviceRecord = ondevice.Record
	// PersonalBuilder is the incremental personal-KG pipeline.
	PersonalBuilder = ondevice.Builder
	// PersonEntity is a fused on-device person.
	PersonEntity = ondevice.PersonEntity
	// DeviceSim simulates one device in a sync group.
	DeviceSim = ondevice.Device
	// DeviceSyncGroup is a user's linked devices.
	DeviceSyncGroup = ondevice.SyncGroup
	// StaticAsset is the shipped popular-entity artifact.
	StaticAsset = ondevice.StaticAsset
)

// Storage (internal/storage).
type (
	// KVStore is the disk-oriented key-value store.
	KVStore = storage.Store
	// KVOptions configure a KVStore.
	KVOptions = storage.Options
)

// OpenKV opens a disk-oriented store in dir.
func OpenKV(dir string, opts KVOptions) (*KVStore, error) { return storage.Open(dir, opts) }

// Vector index (internal/vecindex).
type (
	// Vector is a dense embedding.
	Vector = vecindex.Vector
	// FlatIndex is the exact kNN index.
	FlatIndex = vecindex.FlatIndex
)

// Workload generators (internal/workload) — exposed so downstream users
// can reproduce the benchmark worlds.
type (
	// WorldConfig sizes the synthetic KG.
	WorldConfig = workload.KGConfig
	// World is a generated KG plus gold structure.
	World = workload.World
	// CorpusConfig sizes the synthetic web corpus.
	CorpusConfig = webcorpus.Config
	// QueryLogEntry is one serving-layer query observation.
	QueryLogEntry = workload.QueryLogEntry
	// QueryLogConfig sizes the synthetic query log.
	QueryLogConfig = workload.QueryLogConfig
)

// GenerateQueryLog samples a popularity-biased query log over a world.
func GenerateQueryLog(w *World, cfg QueryLogConfig) []QueryLogEntry {
	return workload.GenerateQueryLog(w, cfg)
}

// GenerateWorld builds a synthetic open-domain KG.
func GenerateWorld(cfg WorldConfig) (*World, error) { return workload.GenerateKG(cfg) }

// GenerateCorpus builds a synthetic web corpus over a world.
func GenerateCorpus(w *World, cfg CorpusConfig) []*Document { return webcorpus.Generate(w, cfg) }

// NewSearchIndex indexes documents for BM25 search.
func NewSearchIndex(docs []*Document) *SearchIndex { return websearch.NewIndex(docs) }
