package saga

import (
	"errors"
	"fmt"

	"saga/internal/wal"
)

// Durability (internal/wal): crash-safe persistence for the knowledge
// graph. A DurableManager pairs a Graph with a write-ahead log and
// watermark-consistent checkpoints in a data directory; reopening the
// directory reconstructs the graph to its last durable watermark
// (checkpoint load + log-suffix replay).
type (
	// DurableManager is the write-ahead-log manager attached to a graph.
	DurableManager = wal.Manager
	// DurableOptions configure OpenDurable (fsync policy, checkpoint
	// cadence, filesystem override).
	DurableOptions = wal.Options
	// RecoveryInfo reports what a durable open found and did.
	RecoveryInfo = wal.RecoveryInfo
	// SyncPolicy selects when the log is fsynced.
	SyncPolicy = wal.SyncPolicy
)

// Fsync policies.
const (
	// SyncEachCommit fsyncs inside every Commit (the default).
	SyncEachCommit = wal.SyncEachCommit
	// SyncInterval fsyncs from a background flusher every SyncEvery.
	SyncInterval = wal.SyncInterval
	// SyncNever fsyncs only at checkpoints and Close.
	SyncNever = wal.SyncNever
)

// ImportGraph copies src's ontology, entities, predicates, and triples
// into the empty graph dst (bulk seeding for a durable data directory).
var ImportGraph = wal.ImportGraph

// OpenDurable opens (or creates) the durable data directory dir over the
// empty graph g: an existing directory is recovered into g, a fresh one
// starts an empty log. Callers mutate g as usual and call Commit /
// Checkpoint on the manager to persist.
func OpenDurable(dir string, g *Graph, opts DurableOptions) (*DurableManager, *RecoveryInfo, error) {
	return wal.Open(dir, g, opts)
}

// OpenDurablePlatform opens the durable data directory dir and wraps the
// recovered graph in a Platform whose durability hooks (ODKE barrier,
// CloseDurable) are wired. The returned RecoveryInfo reports what was
// recovered; a fresh directory yields an empty platform.
func OpenDurablePlatform(dir string, opts DurableOptions) (*Platform, *RecoveryInfo, error) {
	g := NewGraph()
	m, info, err := wal.Open(dir, g, opts)
	if err != nil {
		return nil, info, err
	}
	p := New(g)
	p.wal = m
	return p, info, nil
}

// Durability returns the platform's WAL manager, or nil when the
// platform is memory-only (constructed with New rather than
// OpenDurablePlatform).
func (p *Platform) Durability() *DurableManager { return p.wal }

// SyncDurable commits and fsyncs every mutation applied so far,
// returning the acknowledged-durable watermark.
func (p *Platform) SyncDurable() (uint64, error) {
	if p.wal == nil {
		return 0, errors.New("saga: platform is not durable; use OpenDurablePlatform")
	}
	return p.wal.Sync()
}

// CheckpointDurable writes a full checkpoint at the current watermark
// and truncates the log behind it.
func (p *Platform) CheckpointDurable() (uint64, error) {
	if p.wal == nil {
		return 0, errors.New("saga: platform is not durable; use OpenDurablePlatform")
	}
	return p.wal.Checkpoint()
}

// CloseDurable flushes, fsyncs, and closes the platform's WAL. The
// graph stays usable in memory; further mutations are no longer logged.
func (p *Platform) CloseDurable() error {
	if p.wal == nil {
		return nil
	}
	err := p.wal.Close()
	p.wal = nil
	if err != nil {
		return fmt.Errorf("saga: close durable state: %w", err)
	}
	return nil
}
