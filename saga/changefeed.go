package saga

import (
	"errors"
	"iter"

	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/wal"
)

// Changefeed surface: as-of reads and live subscriptions, both built on
// the graph's mutation log (kg.Changefeed). As-of reads additionally
// need the WAL's retained checkpoints, so they require a durable
// platform; subscriptions work on any platform.

// Changefeed-related aliases (internal/kg, internal/graphengine,
// internal/wal).
type (
	// Changefeed is a cursor-bearing subscriber handle on the graph's
	// mutation log (see Graph.Feed).
	Changefeed = kg.Changefeed
	// Subscription is a live standing conjunctive query.
	Subscription = graphengine.Subscription
	// SubscriptionEvent is one incremental answer-set update.
	SubscriptionEvent = graphengine.SubscriptionEvent
	// SubscribeOptions configure a subscription's buffering, coalescing
	// window, and eviction bound.
	SubscribeOptions = graphengine.SubscribeOptions
	// SubscriptionStats snapshots the engine's subscription hub.
	SubscriptionStats = graphengine.SubscriptionStats
	// AsOfOverlay is a point-in-time conjunctive read surface over a
	// retained checkpoint plus a log suffix.
	AsOfOverlay = graphengine.Overlay
)

// Changefeed error sentinels.
var (
	// ErrOutsideRetention reports an as-of watermark older than the
	// oldest retained checkpoint.
	ErrOutsideRetention = wal.ErrOutsideRetention
	// ErrSlowSubscriber reports a subscription evicted for falling too
	// far behind.
	ErrSlowSubscriber = graphengine.ErrSlowSubscriber
)

// QueryAt evaluates a conjunctive query against the graph as it was at
// watermark asOf, returning all satisfying bindings sorted and
// deduplicated — the point-in-time twin of QueryConjunctive. The state
// is reconstructed from the newest retained checkpoint at or below
// asOf plus the log suffix, joined through a read overlay; the live
// graph is never blocked or copied. Requires a durable platform;
// watermarks older than the oldest retained checkpoint return
// ErrOutsideRetention (raise DurableOptions.RetainCheckpoints to keep
// more history).
func (p *Platform) QueryAt(clauses []QueryClause, asOf uint64) ([]QueryBinding, error) {
	ov, err := p.overlayAt(asOf)
	if err != nil {
		return nil, err
	}
	return ov.QueryConjunctive(clauses)
}

// QueryStreamAt is the streaming twin of QueryAt, with the same
// options contract as QueryStream (limit push-down, cursors, timeout).
// The stream's row order is identical to what QueryStream produced at
// watermark asOf. Unlike QueryStream, reconstruction can fail, so the
// iterator is returned alongside an error.
func (p *Platform) QueryStreamAt(clauses []QueryClause, asOf uint64, opts QueryOptions) (iter.Seq2[QueryBinding, error], error) {
	ov, err := p.overlayAt(asOf)
	if err != nil {
		return nil, err
	}
	return ov.StreamConjunctive(clauses, opts), nil
}

// overlayAt reconstructs the point-in-time read overlay for asOf.
func (p *Platform) overlayAt(asOf uint64) (*graphengine.Overlay, error) {
	if p.wal == nil {
		return nil, errors.New("saga: as-of reads require a durable platform; use OpenDurablePlatform")
	}
	base, suffix, err := p.wal.SnapshotAt(asOf)
	if err != nil {
		return nil, err
	}
	return graphengine.NewOverlay(base, suffix), nil
}

// Subscribe registers a standing conjunctive query: the full answer
// set arrives as the first event, then incremental adds and retracts
// as the graph mutates (see graphengine.Engine.Subscribe for delivery,
// coalescing, and eviction semantics). This is the surface behind the
// HTTP /subscribe endpoint.
func (p *Platform) Subscribe(clauses []QueryClause, opts SubscribeOptions) (*Subscription, error) {
	return p.engine.Subscribe(clauses, opts)
}

// SubscriptionStats snapshots the engine's subscription hub (live
// subscriber count, slowest-subscriber lag, lifetime evictions).
func (p *Platform) SubscriptionStats() SubscriptionStats {
	return p.engine.SubscriptionStats()
}

// ChangefeedStats is the changefeed observability snapshot surfaced on
// GET /health.
type ChangefeedStats struct {
	// Watermark is the graph's current mutation sequence.
	Watermark uint64 `json:"watermark"`
	// DurableLSN is the highest fsync-acknowledged mutation sequence
	// (0 on memory-only platforms).
	DurableLSN uint64 `json:"durable_lsn"`
	// RetainedCheckpoints is how many checkpoints the WAL currently
	// retains for as-of reads (0 on memory-only platforms).
	RetainedCheckpoints int `json:"retained_checkpoints"`
	// Subscribers is the number of live subscriptions.
	Subscribers int `json:"subscribers"`
	// SlowestSubscriberLag is the largest watermark gap between the
	// graph and a subscriber's last delivered event.
	SlowestSubscriberLag uint64 `json:"slowest_subscriber_lag"`
	// SubscriberEvictions counts subscribers dropped for falling too
	// far behind, over the platform's lifetime.
	SubscriberEvictions int64 `json:"subscriber_evictions"`
}

// ChangefeedStats snapshots the platform's changefeed: the mutation-log
// watermark, durability progress, as-of retention, and subscription
// health.
func (p *Platform) ChangefeedStats() ChangefeedStats {
	st := ChangefeedStats{Watermark: p.graph.LastSeq()}
	if p.wal != nil {
		st.DurableLSN = p.wal.DurableLSN()
		st.RetainedCheckpoints = p.wal.RetainedCheckpoints()
	}
	sub := p.engine.SubscriptionStats()
	st.Subscribers = sub.Subscribers
	st.SlowestSubscriberLag = sub.SlowestLag
	st.SubscriberEvictions = sub.Evictions
	return st
}
