module saga

go 1.24
